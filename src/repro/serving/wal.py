"""Write-ahead evidence log: crash durability for the serving layer.

The WAL closes the durability gap between explicit snapshots: every ingest
batch is appended here — fsynced, one JSONL line per *acked* batch — before
the service folds it and acknowledges the client.  Recovery is therefore
``latest snapshot + WAL replay``: :meth:`repro.serving.service.ReputationService.recover`
restores the newest snapshot (if any) and re-ingests every WAL batch past
its watermark, yielding a session byte-identical to one that never crashed
(the same restart-identity contract the snapshot path already honors).

Format (version 1, one JSON object per line, reusing the sweep-journal
discipline of :mod:`repro.experiments.journal`)::

    {"config_sha256": "...", "format": "repro-serve-wal", "version": 1}
    {"events": [...], "key": "c1-0", "n": 2, "seq": 0, "sha256": "..."}
    {"events": [...], "key": null, "n": 1, "seq": 2, "sha256": "..."}
    ...

``seq`` is the service's total-ingested counter *before* the batch, so
batches are contiguous: each line's ``seq`` equals the previous line's
``seq + n``.  ``key`` is the client's idempotency key (replayed into the
dedup window on recovery so retries after a crash still never
double-ingest).  ``sha256`` covers the line's canonical JSON sans itself.

Damage policy — asymmetric on purpose:

* **Torn/corrupt tail** (crash mid-append): those batches were never acked,
  so they are *truncated* from the file with a structured
  :class:`TornTailWarning`; the client's retry re-ingests them.
* **Damaged interior line** (bit rot under acked data): unrecoverable acked
  evidence — :func:`verify_wal` and :meth:`WriteAheadLog.open` hard-fail
  with :class:`~repro.errors.IntegrityError`.

Compaction is keyed to snapshot watermarks: once a snapshot covers the
first ``n`` ingested events, every batch ending at or before ``n`` is dead
weight and :meth:`WriteAheadLog.compact` atomically rewrites the log
without them (tmp file + fsync + ``os.replace``), keeping recovery cost
proportional to the events since the last snapshot, not since boot.

The ``wal.append`` fault site (:mod:`repro.faults`) can corrupt the encoded
line or SIGKILL the process mid-append — exactly the crashes the recovery
path must survive; ``tests/chaos`` and the CI chaos-gate drill both.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import IO

from repro import faults
from repro.errors import ConfigurationError, IntegrityError
from repro.simulation.transaction import Feedback

WAL_MAGIC = "repro-serve-wal"
WAL_VERSION = 1

#: Wire fields of one feedback event inside a WAL line (sorted).
_FEEDBACK_FIELDS = ("rater", "rating", "subject", "time", "transaction_id", "truthful")


class TornTailWarning(UserWarning):
    """A WAL's torn/corrupt tail was truncated during recovery.

    The warning message is a sorted-keys JSON object
    (``path`` / ``kept_entries`` / ``truncated_lines`` / ``truncated_bytes``)
    so log scrapers get structure, not prose.
    """


def config_digest(identity: Mapping[str, object]) -> str:
    """Stable identity of the service config a WAL belongs to.

    Replaying a WAL into a differently-configured service would produce
    silently different scores, so the header pins the score-relevant
    config subset (sorted-keys JSON, hashed) the same way sweep journals
    pin their campaign.
    """
    encoded = json.dumps(dict(identity), sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def feedback_to_wire(feedback: Feedback) -> dict[str, object]:
    """One feedback event as a plain JSON object (all fields, explicit)."""
    return {
        "rater": feedback.rater,
        "rating": feedback.rating,
        "subject": feedback.subject,
        "time": feedback.time,
        "transaction_id": feedback.transaction_id,
        "truthful": feedback.truthful,
    }


def feedback_from_wire(payload: Mapping[str, object]) -> Feedback:
    """Rebuild a :class:`Feedback` from its WAL wire form."""
    try:
        return Feedback(
            transaction_id=payload["transaction_id"],  # type: ignore[arg-type]
            time=payload["time"],  # type: ignore[arg-type]
            subject=payload["subject"],  # type: ignore[arg-type]
            rating=payload["rating"],  # type: ignore[arg-type]
            rater=payload["rater"],  # type: ignore[arg-type]
            truthful=payload["truthful"],  # type: ignore[arg-type]
        )
    except (KeyError, TypeError) as error:
        raise IntegrityError(f"malformed WAL feedback payload: {error}") from error


@dataclass(frozen=True)
class WalEntry:
    """One replayed WAL line: an acked ingest batch."""

    #: Total events the service had ingested *before* this batch.
    seq: int
    #: The client idempotency key the batch was acked under (if any).
    key: str | None
    events: tuple[Feedback, ...]

    @property
    def end(self) -> int:
        """Total events ingested *after* this batch (``seq + len(events)``)."""
        return self.seq + len(self.events)


def _entry_digest(payload: Mapping[str, object]) -> str:
    encoded = json.dumps(dict(payload), sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def _parse_json_line(line: bytes) -> dict[str, object] | None:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _parse_entry_line(line: bytes) -> WalEntry | None:
    """Validate one WAL batch line; ``None`` for anything short of intact."""
    payload = _parse_json_line(line)
    if payload is None:
        return None
    seq = payload.get("seq")
    n = payload.get("n")
    key = payload.get("key")
    digest = payload.get("sha256")
    events = payload.get("events")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        return None
    if not isinstance(events, list) or not isinstance(n, int) or n != len(events):
        return None
    if key is not None and not isinstance(key, str):
        return None
    body = {"events": events, "key": key, "n": n, "seq": seq}
    if digest != _entry_digest(body):
        return None
    try:
        decoded = tuple(feedback_from_wire(event) for event in events)
    except IntegrityError:
        return None
    return WalEntry(seq=seq, key=key, events=decoded)


def _fsync_directory(path: str) -> None:
    """Make a rename in ``path``'s directory durable (POSIX)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _scan(
    path: str, raw: bytes, *, expected_config: str | None
) -> tuple[list[WalEntry], list[bytes], int, int]:
    """Classify a WAL's bytes into valid prefix + torn tail.

    Returns ``(entries, raw_entry_lines, tail_offset, tail_lines)`` where
    ``tail_offset`` is the byte offset the file must be truncated to (its
    length when the tail is clean) and ``tail_lines`` how many damaged
    lines sit past it.  Raises :class:`IntegrityError` for a malformed
    header, a damaged *interior* line (a valid line after an invalid one)
    or a sequence gap, and :class:`ConfigurationError` when the header pins
    a different service config than ``expected_config``.
    """
    lines = raw.split(b"\n")
    header = _parse_json_line(lines[0] if lines else b"")
    if (
        header is None
        or header.get("format") != WAL_MAGIC
        or not isinstance(header.get("config_sha256"), str)
    ):
        raise IntegrityError(f"{path}: not a serve WAL (malformed header)")
    if header.get("version") != WAL_VERSION:
        raise IntegrityError(
            f"{path}: unsupported WAL version {header.get('version')!r}"
        )
    if expected_config is not None and header["config_sha256"] != expected_config:
        raise ConfigurationError(
            f"{path}: WAL belongs to a differently-configured service "
            "(mechanism/refresh/default-score changed since it was written?)"
        )
    entries: list[WalEntry] = []
    raw_lines: list[bytes] = []
    offset = len(lines[0]) + 1
    tail_offset = offset
    tail_lines = 0
    for index, line in enumerate(lines[1:]):
        is_last = index == len(lines) - 2
        if not line:
            if is_last:
                continue  # trailing newline
            entry = None  # blank interior line == damage
        else:
            entry = _parse_entry_line(line)
        if entry is None:
            tail_lines += 1
        elif tail_lines:
            raise IntegrityError(
                f"{path}: damaged interior line (valid batch seq={entry.seq} "
                f"follows {tail_lines} corrupt line(s)) — acked evidence lost"
            )
        else:
            if entries and entry.seq != entries[-1].end:
                raise IntegrityError(
                    f"{path}: sequence gap (batch seq={entry.seq} after "
                    f"seq={entries[-1].end} expected) — acked evidence lost"
                )
            entries.append(entry)
            raw_lines.append(line)
            tail_offset = offset + len(line) + 1
        offset += len(line) + 1
    return entries, raw_lines, tail_offset, tail_lines


class WriteAheadLog:
    """Append-side handle of an open serve WAL.

    Use :meth:`open` (which also replays and repairs the existing file)
    rather than constructing directly.  ``fsync=True`` makes every
    appended batch durable before :meth:`append` returns — the whole point
    of a WAL; tests that hammer thousands of tiny batches can turn it off.
    All methods are thread-safe.
    """

    def __init__(
        self,
        path: str,
        handle: IO[bytes],
        *,
        config_sha256: str,
        fsync: bool = True,
        entries: int = 0,
        events: int = 0,
    ) -> None:
        self._path = path
        self._handle = handle
        self._config_sha256 = config_sha256
        self._fsync = fsync
        self._entries = entries
        self._events = events
        self._lock = threading.Lock()

    @classmethod
    def open(
        cls,
        path: str,
        *,
        config_sha256: str,
        fsync: bool = True,
    ) -> tuple[WriteAheadLog, list[WalEntry], int]:
        """Open (creating if missing) a WAL pinned to a service config.

        Returns ``(wal, entries, n_truncated)``: the intact batches in
        append order and how many torn/corrupt tail lines were truncated
        away (each truncation also emits a :class:`TornTailWarning`).
        Interior damage raises :class:`~repro.errors.IntegrityError`; a
        WAL written for a differently-configured service raises
        :class:`~repro.errors.ConfigurationError`.
        """
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            # Missing, or a crash beat the header write: nothing was ever
            # acked through this file, so start it fresh.
            handle = open(path, "wb")
            header = {
                "config_sha256": config_sha256,
                "format": WAL_MAGIC,
                "version": WAL_VERSION,
            }
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
            return cls(path, handle, config_sha256=config_sha256, fsync=fsync), [], 0

        with open(path, "rb") as existing:
            raw = existing.read()
        if b"\n" not in raw:
            # Torn header write: the header is fsynced before the first
            # append can happen, so a file without even one complete line
            # holds no acked data — recreate it.
            handle = open(path, "wb")
            header = {
                "config_sha256": config_sha256,
                "format": WAL_MAGIC,
                "version": WAL_VERSION,
            }
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
            return cls(path, handle, config_sha256=config_sha256, fsync=fsync), [], 0
        entries, _, tail_offset, tail_lines = _scan(
            path, raw, expected_config=config_sha256
        )
        if tail_lines:
            with open(path, "r+b") as repair:
                repair.truncate(tail_offset)
                repair.flush()
                os.fsync(repair.fileno())
            warnings.warn(
                TornTailWarning(
                    json.dumps(
                        {
                            "kept_entries": len(entries),
                            "path": path,
                            "truncated_bytes": len(raw) - tail_offset,
                            "truncated_lines": tail_lines,
                        },
                        sort_keys=True,
                    )
                ),
                stacklevel=2,
            )
        wal = cls(
            path,
            open(path, "ab"),
            config_sha256=config_sha256,
            fsync=fsync,
            entries=len(entries),
            events=sum(len(entry.events) for entry in entries),
        )
        return wal, entries, tail_lines

    def append(
        self, events: Sequence[Feedback], *, seq: int, key: str | None = None
    ) -> None:
        """Durably log one acked ingest batch *before* the service acks it.

        The ``wal.append`` fault site can corrupt the encoded line or kill
        the process mid-write — exercising exactly the torn tails the
        recovery path must survive.
        """
        wire = [feedback_to_wire(event) for event in events]
        body = {"events": wire, "key": key, "n": len(wire), "seq": seq}
        line = dict(body)
        line["sha256"] = _entry_digest(body)
        encoded = json.dumps(line, sort_keys=True).encode("utf-8") + b"\n"
        action = faults.fire("wal.append", seq=seq, n=len(wire))
        if action == "corrupt":
            encoded = faults.corrupt_bytes(encoded)
        with self._lock:
            self._handle.write(encoded)
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
            self._entries += 1
            self._events += len(wire)

    def compact(self, upto_seq: int) -> int:
        """Atomically drop every batch a snapshot already covers.

        A batch is dead once ``entry.end <= upto_seq`` (all its events sit
        at or below the snapshot's ingested count; batches never straddle
        snapshots because snapshots take the service lock between
        batches).  The rewrite goes through a temp file + fsync +
        ``os.replace`` so a crash mid-compaction leaves either the old or
        the new file, never a hybrid.  Lines that fail validation (e.g. a
        fault-corrupted tail not yet repaired) are kept verbatim —
        compaction must never destroy evidence it cannot vouch for.
        Returns the number of batches dropped.
        """
        with self._lock:
            self._handle.flush()
            with open(self._path, "rb") as current:
                raw = current.read()
            lines = [line for line in raw.split(b"\n")[1:] if line]
            kept: list[bytes] = []
            kept_entries = 0
            kept_events = 0
            dropped = 0
            for line in lines:
                entry = _parse_entry_line(line)
                if entry is not None and entry.end <= upto_seq:
                    dropped += 1
                    continue
                kept.append(line)
                if entry is not None:
                    kept_entries += 1
                    kept_events += len(entry.events)
            header = {
                "config_sha256": self._config_sha256,
                "format": WAL_MAGIC,
                "version": WAL_VERSION,
            }
            tmp_path = f"{self._path}.tmp"
            with open(tmp_path, "wb") as tmp:
                tmp.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
                for line in kept:
                    tmp.write(line + b"\n")
                tmp.flush()
                os.fsync(tmp.fileno())
            self._handle.close()
            os.replace(tmp_path, self._path)
            _fsync_directory(self._path)
            self._handle = open(self._path, "ab")
            self._entries = kept_entries
            self._events = kept_events
            return dropped

    @property
    def path(self) -> str:
        return self._path

    @property
    def entry_count(self) -> int:
        """Batch lines currently in the log (post-replay, post-compaction)."""
        with self._lock:
            return self._entries

    @property
    def event_count(self) -> int:
        """Feedback events currently in the log."""
        with self._lock:
            return self._events

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> WriteAheadLog:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def verify_wal(path: str) -> tuple[int, int]:
    """Validate a serve WAL; returns ``(n_valid, n_tail_invalid)`` lines.

    Torn/corrupt *tail* lines are counted (the next recovery will truncate
    them — they were never acked); a damaged *interior* line, a sequence
    gap, or a malformed header raises
    :class:`~repro.errors.IntegrityError` because acked evidence is gone.
    Unlike :meth:`WriteAheadLog.open` this never modifies the file and
    never checks the config digest (``verify-records`` has no config).
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        raise IntegrityError(f"cannot read WAL {path}: {error}") from error
    entries, _, _, tail_lines = _scan(path, raw, expected_config=None)
    return len(entries), tail_lines

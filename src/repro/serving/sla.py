"""SLA-style latency accounting for the serving layer.

The ROADMAP's serving claim ("heavy traffic from millions of users") is only
worth anything as a *measured* claim, so every service operation — ingest,
query, refresh, snapshot — reports its wall-clock latency into a
:class:`LatencyTracker` and ``/v1/health`` publishes the percentile summary.
This follows the rule-based SLA-management line (Paschke & Bichler): the
service carries its own service-level evidence instead of leaving latency to
external guesswork.

This module is the serving layer's *only* wall-clock reader and is listed in
the repro-lint R1 ``clock_exempt`` configuration: latency accounting is
inherently wall-clock, but it stays strictly observational — nothing derived
from these clocks may ever reach a record, a score or any other reproducible
artifact.  Service and transport code route every timing need through
:func:`clock` / :func:`timed` rather than importing :mod:`time` themselves,
so the determinism lint keeps a single auditable exemption.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Iterator


def clock() -> float:
    """A monotonic high-resolution timestamp in seconds.

    The serving layer's single sanctioned wall-clock read; see the module
    docstring for why this indirection exists.
    """
    return time.perf_counter()


class LatencyTracker:
    """A bounded reservoir of recent operation latencies.

    Keeps the last ``window`` observations in a ring buffer (constant
    memory under sustained traffic) plus lifetime count/total, and computes
    percentiles over the retained window on demand.  Percentile queries are
    O(window log window); the serving layer calls them only from the health
    endpoint and the benchmark harness, never per request.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError("latency window must be at least 1")
        self.window = window
        self._ring: list[float] = []
        self._cursor = 0
        self._count = 0
        self._total = 0.0

    def observe(self, seconds: float) -> None:
        """Record one operation latency."""
        if len(self._ring) < self.window:
            self._ring.append(seconds)
        else:
            self._ring[self._cursor] = seconds
            self._cursor = (self._cursor + 1) % self.window
        self._count += 1
        self._total += seconds

    @property
    def count(self) -> int:
        """Lifetime number of observations (not capped by the window)."""
        return self._count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained window.

        Nearest-rank on the sorted window; 0.0 when nothing was observed.
        """
        if not self._ring:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._ring)
        rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """Count, mean and the p50/p95/p99/max readout, in milliseconds.

        Milliseconds because that is the granularity SLA targets are
        written in; the raw observations stay in seconds.
        """
        if not self._ring:
            return {
                "count": 0.0,
                "mean_ms": 0.0,
                "p50_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
                "max_ms": 0.0,
            }
        return {
            "count": float(self._count),
            "mean_ms": 1000.0 * self._total / self._count,
            "p50_ms": 1000.0 * self.percentile(50.0),
            "p95_ms": 1000.0 * self.percentile(95.0),
            "p99_ms": 1000.0 * self.percentile(99.0),
            "max_ms": 1000.0 * max(self._ring),
        }


class OperationClock:
    """Named latency trackers for a service's operation families."""

    def __init__(self, operations: tuple[str, ...], window: int = 4096) -> None:
        self.trackers: dict[str, LatencyTracker] = {
            name: LatencyTracker(window) for name in operations
        }

    @contextmanager
    def timed(self, operation: str) -> Iterator[None]:
        """Time one operation into its named tracker."""
        tracker = self.trackers[operation]
        start = clock()
        try:
            yield
        finally:
            tracker.observe(clock() - start)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-operation latency summaries, sorted by operation name."""
        return {name: self.trackers[name].summary() for name in sorted(self.trackers)}

"""Core machinery of the ``repro-lint`` static-analysis suite.

The repo's reproducibility story — byte-identical records across backends,
acceleration flags and worker counts — rests on a handful of conventions
(named RNG streams, sorted iteration, cache epoch discipline, accel-flag
purity tests).  This framework turns those conventions into machine-checked
rules: each rule walks a module's AST (or the whole project) and emits
:class:`Finding` objects, which per-line suppression comments can silence::

    risky_line()  # repro-lint: ignore[R5] justification text

A suppression comment on the offending line, or alone on the line directly
above it, silences the named rule(s); rules may be named by id (``R5``) or
by slug (``float-equality``).  Suppressions are parsed once per module and
matched case-insensitively.
"""

from __future__ import annotations

import abc
import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.contracts import LintConfig

#: Matches ``repro-lint: ignore[R1]`` / ``ignore[R1, ordering]`` inside a comment.
_SUPPRESSION = re.compile(r"repro-lint:\s*ignore\[([^\]]+)\]", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    name: str
    path: str
    line: int
    column: int
    message: str
    suppressed: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "suppressed": self.suppressed,
        }


class ModuleContext:
    """A parsed source module plus its suppression table."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        #: Posix-style path relative to the lint root; contracts match on it.
        self.rel = rel
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()
        self._suppressions = _parse_suppressions(source)

    def matches(self, suffix: str) -> bool:
        """Whether this module is the one a contract names (suffix match)."""
        return self.rel == suffix or self.rel.endswith("/" + suffix)

    def suppressed(self, line: int, rule_id: str, rule_name: str) -> bool:
        """Whether a finding on ``line`` is silenced by a suppression comment.

        A suppression applies when it sits on the flagged line itself, or in
        the contiguous block of comment-only lines directly above it.
        """
        wanted = (rule_id.lower(), rule_name.lower())
        tokens = self._suppressions.get(line)
        if tokens is not None and any(name in tokens for name in wanted):
            return True
        # Walk the comment block immediately above the statement: every line
        # must be comment-only, so an inline comment further up cannot leak
        # its suppression onto an unrelated statement.
        candidate = line - 1
        while self._line_is_comment_only(candidate):
            tokens = self._suppressions.get(candidate)
            if tokens is not None and any(name in tokens for name in wanted):
                return True
            candidate -= 1
        return False

    def _line_is_comment_only(self, line: int) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        return self.lines[line - 1].lstrip().startswith("#")


def _parse_suppressions(source: str) -> dict[int, tuple[str, ...]]:
    """Map line number -> lowercase rule tokens named by suppression comments."""
    table: dict[int, tuple[str, ...]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches this first
        comments = []
    for line, text in comments:
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        names = tuple(part.strip().lower() for part in match.group(1).split(",") if part.strip())
        if names:
            table[line] = table.get(line, ()) + names
    return table


@dataclass
class ProjectContext:
    """Everything a whole-project rule may need."""

    modules: list[ModuleContext]
    #: Root directory the linted paths live under (for reporting).
    root: Path
    #: Test tree for cross-referencing rules (R4); ``None`` disables them
    #: with an explicit configuration finding rather than a silent pass.
    tests_root: Path | None = None

    def find_module(self, suffix: str) -> ModuleContext | None:
        for module in self.modules:
            if module.matches(suffix):
                return module
        return None


class Rule(abc.ABC):
    """One enforced invariant.

    Subclasses override :meth:`check_module` (called once per file) and/or
    :meth:`check_project` (called once with the whole project), yielding
    findings; the framework applies suppressions afterwards.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check_module(
        self, module: ModuleContext, config: LintConfig
    ) -> Iterable[Finding]:
        return ()

    def check_project(
        self, project: ProjectContext, config: LintConfig
    ) -> Iterable[Finding]:
        return ()

    def finding(
        self, module_rel: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            name=self.name,
            path=module_rel,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


#: Registry of rule classes keyed by rule id, populated via :func:`register`.
_REGISTRY: dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    rule_id = getattr(rule_cls, "rule_id", "")
    if not rule_id:
        raise ValueError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def registered_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by rule id."""
    # Rule modules register on import; pulling them in here keeps the
    # registry populated regardless of which entry point ran first.
    import repro.analysis.rules  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    checked_files: int = 0

    @property
    def active(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def collect_modules(paths: Sequence[Path], root: Path) -> list[ModuleContext]:
    """Parse every ``*.py`` file under ``paths`` into module contexts."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    modules = []
    for file_path in files:
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        modules.append(ModuleContext(file_path, rel, file_path.read_text()))
    return modules


def run_lint(
    paths: Sequence[Path],
    config: LintConfig,
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
    tests_root: Path | None = None,
) -> LintResult:
    """Lint ``paths`` with ``rules`` (default: every registered rule)."""
    if rules is None:
        rules = registered_rules()
    lint_root = root if root is not None else Path.cwd()
    modules = collect_modules(paths, lint_root)
    project = ProjectContext(modules=modules, root=lint_root, tests_root=tests_root)
    result = LintResult(checked_files=len(modules))
    for rule in rules:
        for module in modules:
            for finding in rule.check_module(module, config):
                result.findings.append(
                    _apply_suppression(finding, module, rule)
                )
        for finding in rule.check_project(project, config):
            module = project.find_module(finding.path)
            if module is not None:
                finding = _apply_suppression(finding, module, rule)
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return result


def _apply_suppression(finding: Finding, module: ModuleContext, rule: Rule) -> Finding:
    if module.suppressed(finding.line, rule.rule_id, rule.name):
        return Finding(
            rule=finding.rule,
            name=finding.name,
            path=finding.path,
            line=finding.line,
            column=finding.column,
            message=finding.message,
            suppressed=True,
        )
    return finding

"""The ``repro-lint`` command line interface.

Usage::

    repro-lint                      # lint src/repro against the default rules
    repro-lint src/repro --format json --output lint-report.json
    repro-lint --select R1,R5      # only the named rules
    repro-lint --list-rules

Exit status 0 means no active findings; 1 means findings; 2 means usage
error.  ``python -m repro.analysis`` is the equivalent module entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from repro.analysis.contracts import default_config
from repro.analysis.framework import Rule, registered_rules, run_lint
from repro.analysis.reporters import render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism/purity static analysis for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro under the cwd)",
    )
    parser.add_argument(
        "--tests",
        type=Path,
        default=None,
        help="test tree for cross-reference rules (default: ./tests if present)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _match_rules(rules: Sequence[Rule], spec: str) -> list[Rule]:
    wanted = {token.strip().lower() for token in spec.split(",") if token.strip()}
    matched = [
        rule
        for rule in rules
        if rule.rule_id.lower() in wanted or rule.name.lower() in wanted
    ]
    known = {rule.rule_id.lower() for rule in rules} | {rule.name.lower() for rule in rules}
    unknown = wanted - known
    if unknown:
        raise SystemExit(f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}")
    return matched


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)
    rules = registered_rules()
    if options.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name:16s} {rule.description}")
        return 0
    if options.select:
        rules = _match_rules(rules, options.select)
    if options.ignore:
        ignored = {rule.rule_id for rule in _match_rules(rules, options.ignore)}
        rules = [rule for rule in rules if rule.rule_id not in ignored]
    paths = list(options.paths)
    if not paths:
        default = Path("src") / "repro"
        if not default.is_dir():
            parser.error("no paths given and ./src/repro does not exist")
        paths = [default]
    missing = [path for path in paths if not path.exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(str(p) for p in missing)}")
    tests_root = options.tests
    if tests_root is None:
        candidate = Path("tests")
        tests_root = candidate if candidate.is_dir() else None
    result = run_lint(
        paths,
        default_config(),
        rules=rules,
        root=Path.cwd(),
        tests_root=tests_root,
    )
    if options.format == "json":
        report = render_json(result)
    else:
        report = render_text(result, show_suppressed=options.show_suppressed)
    if options.output is not None:
        options.output.write_text(report + "\n")
        # Keep the console actionable even when the report goes to a file.
        summary = report.splitlines()[-1] if options.format == "text" else (
            f"repro-lint: {len(result.active)} active finding(s); "
            f"report written to {options.output}"
        )
        print(summary)
    else:
        print(report)
    return 1 if result.active else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""``repro-lint``: determinism/purity static analysis for the repro tree.

The package turns the repository's reproducibility conventions into
machine-enforced rules (see ``docs/INVARIANTS.md``):

========  ================  ====================================================
Rule id   Name              Invariant
========  ================  ====================================================
R1        determinism       randomness flows through named RandomStreams only
R2        ordering          sets are sorted before order reaches any output
R3        cache-discipline  mutations bump version/epoch counters
R4        accel-purity      every accel flag has a byte-agreement test
R5        float-equality    no exact ==/!= on computed floats
R6        typing            defs fully annotated, Optional explicit
========  ================  ====================================================

Entry points: the ``repro-lint`` console script, ``python -m
repro.analysis``, or :func:`repro.analysis.framework.run_lint` in process.
Suppress a single finding with ``# repro-lint: ignore[RULE] reason``.
"""

from __future__ import annotations

from repro.analysis.contracts import CacheContract, LintConfig, default_config
from repro.analysis.framework import (
    Finding,
    LintResult,
    ModuleContext,
    ProjectContext,
    Rule,
    register,
    registered_rules,
    run_lint,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "CacheContract",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "default_config",
    "register",
    "registered_rules",
    "render_json",
    "render_text",
    "run_lint",
]

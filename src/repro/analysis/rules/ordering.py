"""R2 — ordered iteration: never iterate a set into ordered output.

Python ``set`` iteration order depends on string hashing, which is salted
per process — the classic way byte-identical records break the moment a
sweep runs under a different worker count or interpreter.  This rule flags
``for`` loops, comprehensions and ``list``/``tuple``/``sum`` conversions
whose iterable is statically known to be a set:

* set literals, set comprehensions, ``set(...)``/``frozenset(...)`` calls
  and chained set-operator calls (``.union(...)``, ``.intersection(...)``…);
* calls to functions annotated ``-> Set[...]`` in the same module, or whose
  name the config registers as set-returning (``FeedbackStore.participants``);
* names assigned from any of the above within the same function.

Wrapping the expression in ``sorted(...)`` is the fix; order-insensitive
consumers (``len``, ``min``, ``max``, ``any``, ``all``, membership) are
never flagged.  Where unordered iteration is provably safe (the values are
re-sorted downstream, or feed an order-independent reduction), suppress
with a justification::

    for peer in live_peers:  # repro-lint: ignore[R2] ids re-sorted below
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.contracts import LintConfig
from repro.analysis.framework import Finding, ModuleContext, Rule, register

_SET_OPERATOR_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}

#: Converting/reducing calls where argument order reaches the result.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "sum", "enumerate", "iter", "next"}


def _set_returning_defs(tree: ast.Module) -> set[str]:
    """Names of functions locally annotated as returning a set."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.returns:
            rendered = ast.unparse(node.returns)
            if rendered.partition("[")[0] in ("Set", "set", "FrozenSet", "frozenset"):
                names.add(node.name)
    return names


class _SetTracker(ast.NodeVisitor):
    """Tracks which local names are bound to set-valued expressions."""

    def __init__(self, set_funcs: set[str]) -> None:
        self.set_funcs = set_funcs
        self.set_names: set[str] = set()

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra preserves setness; require at least one known side.
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Name) and func.id in self.set_funcs:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in self.set_funcs:
                    return True
                if func.attr in _SET_OPERATOR_METHODS and self.is_set_expr(func.value):
                    return True
                if func.attr == "copy" and self.is_set_expr(func.value):
                    return True
        return False


@register
class OrderedIterationRule(Rule):
    rule_id = "R2"
    name = "ordering"
    description = (
        "Iterating a set without sorted() leaks hash order into results; "
        "records, JSON output and accumulations must iterate sorted views."
    )

    def check_module(
        self, module: ModuleContext, config: LintConfig
    ) -> Iterable[Finding]:
        set_funcs = _set_returning_defs(module.tree) | set(config.set_returning)
        findings: list[Finding] = []
        for scope in self._scopes(module.tree):
            tracker = _SetTracker(set_funcs)
            # First pass: which names are bound to sets anywhere in the scope
            # (simple flow-insensitive binding; rebinding to a sorted list
            # removes the name again).
            for node in self._walk_scope(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        if tracker.is_set_expr(node.value):
                            tracker.set_names.add(target.id)
                        else:
                            tracker.set_names.discard(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                    rendered = ast.unparse(node.annotation)
                    if rendered.partition("[")[0] in ("Set", "set", "FrozenSet", "frozenset"):
                        tracker.set_names.add(node.target.id)
            for node in self._walk_scope(scope):
                iter_expr: ast.expr | None = None
                context = ""
                if isinstance(node, ast.For):
                    iter_expr, context = node.iter, "for loop"
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iter_expr, context = node.generators[0].iter, "comprehension"
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                ):
                    iter_expr, context = node.args[0], f"{node.func.id}() conversion"
                if iter_expr is not None and tracker.is_set_expr(iter_expr):
                    findings.append(
                        self.finding(
                            module.rel,
                            iter_expr,
                            f"set iterated by {context} without sorted(); set order "
                            "is hash-salted and breaks byte-identical records",
                        )
                    )
        return findings

    @staticmethod
    def _scopes(tree: ast.Module) -> list[ast.AST]:
        """Module plus every function, for per-scope name tracking."""
        scopes: list[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        return scopes

    @staticmethod
    def _walk_scope(scope: ast.AST) -> Iterable[ast.AST]:
        """Preorder walk of a scope, in source order, skipping nested defs.

        Source order matters: the binding pass tracks set-valued names as
        they are assigned, so ``base = {...}`` must be seen before a later
        ``combined = base.union(...)`` can be recognised as set-valued.
        """
        stack = list(ast.iter_child_nodes(scope))[::-1]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(list(ast.iter_child_nodes(node))[::-1])

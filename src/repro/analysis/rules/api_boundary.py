"""R9 — api boundary: client trees import only the public facade.

``repro.api`` exists so that examples, benchmarks and downstream users
program against one blessed, documented surface (docs/API.md).  The facade
only stays honest if the in-repo client trees actually live behind it — an
example that quietly reaches into ``repro.reputation.eigentrust`` both
advertises an internal module as public idiom and stops exercising the
facade it is supposed to demonstrate.  This rule walks every module under
the configured client directories (``examples/``, ``benchmarks/``) and
flags any ``repro…`` import whose module is not exactly one of the allowed
facade names (``repro``, ``repro.api``).

The test tree is deliberately *not* a client: unit tests are white-box by
design (docs/INVARIANTS.md records the rationale), and the facade contract
itself is pinned by ``tests/test_api_facade.py`` instead.

Client modules are parsed by this rule (they are outside the linted
``src/repro`` tree), so the standard suppression syntax works in them::

    from repro.core import accel  # repro-lint: ignore[R9] migration pending
"""

from __future__ import annotations

import ast
from pathlib import Path
from collections.abc import Iterable

from repro.analysis.contracts import LintConfig
from repro.analysis.framework import Finding, ModuleContext, ProjectContext, Rule, register


def _repro_imports(tree: ast.AST) -> Iterable[tuple[ast.stmt, str]]:
    """Yield ``(node, module_name)`` for every ``repro…`` import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            # Relative imports (level > 0) stay inside the client tree and
            # cannot name repro internals.
            if node.level == 0 and node.module is not None:
                if node.module == "repro" or node.module.startswith("repro."):
                    yield node, node.module


@register
class ApiBoundaryRule(Rule):
    rule_id = "R9"
    name = "api-boundary"
    description = (
        "Modules in the client trees (examples/, benchmarks/) import only "
        "the public facade (repro / repro.api)."
    )

    def check_project(
        self, project: ProjectContext, config: LintConfig
    ) -> Iterable[Finding]:
        if not config.api_client_dirs or not config.api_allowed_imports:
            return []
        allowed = set(config.api_allowed_imports)
        findings: list[Finding] = []
        for client_dir in config.api_client_dirs:
            directory = project.root / client_dir
            if not directory.is_dir():
                continue
            for path in sorted(directory.rglob("*.py")):
                findings.extend(self._check_client_module(path, project.root, allowed))
        return findings

    def _check_client_module(
        self, path: Path, root: Path, allowed: set[str]
    ) -> Iterable[Finding]:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        try:
            module = ModuleContext(path, rel, path.read_text(encoding="utf-8"))
        except SyntaxError as error:
            yield Finding(
                rule=self.rule_id,
                name=self.name,
                path=rel,
                line=error.lineno or 1,
                column=1,
                message=f"client module does not parse: {error.msg}",
            )
            return
        for node, module_name in _repro_imports(module.tree):
            if module_name in allowed:
                continue
            line = getattr(node, "lineno", 1)
            yield Finding(
                rule=self.rule_id,
                name=self.name,
                path=rel,
                line=line,
                column=getattr(node, "col_offset", 0) + 1,
                message=(
                    f"client tree imports internal module {module_name!r}; "
                    f"import the public facade instead "
                    f"({', '.join(sorted(allowed))})"
                ),
                suppressed=module.suppressed(line, self.rule_id, self.name),
            )

"""R8 — error discipline: broad ``except`` handlers must not swallow.

A bare ``except:``, ``except Exception:`` or ``except BaseException:`` that
neither re-raises nor records the failure turns a real defect into silence —
the sweep keeps running, the record file looks complete, and the missing
task is discovered weeks later (or never).  The repository's convention is
that a broad handler is an *isolation boundary*: it may catch everything,
but it must then either

* re-raise (possibly a narrower, domain-specific error), or
* emit a structured error record via one of the registered emitters
  (``error_record_calls`` in the lint config — e.g.
  ``task_failure_record``), or
* carry a justified ``repro-lint: ignore[R8]`` suppression.

Narrow handlers (``except ValueError``, ``except ReproError``) are outside
the rule's scope — catching a specific exception is a deliberate decision
the type already documents.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.contracts import LintConfig
from repro.analysis.framework import Finding, ModuleContext, Rule, register

#: Exception names whose handlers catch everything.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad_type(node: ast.expr | None) -> bool:
    """Whether an ``except <node>`` clause catches all exceptions."""
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Name):
        return node.id in BROAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_is_broad_type(element) for element in node.elts)
    return False


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_disciplined(handler: ast.ExceptHandler, emitters: frozenset[str]) -> bool:
    """Whether the handler body re-raises or emits a structured record."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call) and _call_name(node.func) in emitters:
                return True
    return False


@register
class ErrorDisciplineRule(Rule):
    rule_id = "R8"
    name = "error-discipline"
    description = (
        "A broad except handler must re-raise, emit a structured error "
        "record, or carry a justified suppression."
    )

    def check_module(
        self, module: ModuleContext, config: LintConfig
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        emitters = frozenset(config.error_record_calls)
        try_types: tuple[type[ast.AST], ...] = (ast.Try,)
        try_star = getattr(ast, "TryStar", None)  # 3.11+
        if try_star is not None:
            try_types = (ast.Try, try_star)
        for node in ast.walk(module.tree):
            if not isinstance(node, try_types):
                continue
            for handler in node.handlers:  # type: ignore[attr-defined]
                if not _is_broad_type(handler.type):
                    continue
                if _is_disciplined(handler, emitters):
                    continue
                caught = (
                    ast.unparse(handler.type) if handler.type is not None else "<bare>"
                )
                findings.append(
                    self.finding(
                        module.rel,
                        handler,
                        f"broad except ({caught}) neither re-raises nor emits "
                        "a structured error record; swallowing all exceptions "
                        "hides real failures",
                    )
                )
        return findings

"""Rule pack: importing this package registers every rule."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401
    accel_purity,
    api_boundary,
    cache_discipline,
    determinism,
    error_discipline,
    float_equality,
    ordering,
    template_parity,
    typing_discipline,
)

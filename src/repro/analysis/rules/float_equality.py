"""R5 — float equality: ``==``/``!=`` on floats hides backend noise.

The vectorized backends agree with pure Python only after quantization
(BLAS re-associates sums), so exact equality on computed floats is a latent
cross-backend bug.  The rule flags ``==``/``!=`` comparisons where either
side is statically float-valued:

* a float literal (``x == 0.5``);
* a ``float(...)`` conversion or true division;
* a name annotated ``float`` in the enclosing function's parameters or a
  visible variable annotation.

Quantization helpers registered in the config are exempt (their whole job
is snapping to a grid and comparing), as are comparisons both of whose
sides are literals.  Exact sentinel checks — comparing against a value a
float represents exactly and that arrives by assignment, not arithmetic
(``forgetting == 1.0``, integer-valued totals hitting ``0.0``) — are
legitimate; suppress those with a justification comment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.contracts import LintConfig
from repro.analysis.framework import Finding, ModuleContext, Rule, register


def _float_annotated_names(func: ast.AST) -> set[str]:
    names: set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None and ast.unparse(arg.annotation) == "float":
                names.add(arg.arg)
    for node in ast.walk(func):
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and ast.unparse(node.annotation) == "float"
        ):
            names.add(node.target.id)
    return names


def _is_floatish(node: ast.expr, float_names: set[str]) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return node.id in float_names
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand, float_names)
    return False


@register
class FloatEqualityRule(Rule):
    rule_id = "R5"
    name = "float-equality"
    description = (
        "Exact ==/!= on float expressions breaks under backend quantization "
        "noise; compare quantized values or suppress with a justification."
    )

    def check_module(
        self, module: ModuleContext, config: LintConfig
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        helpers = set(config.float_eq_helpers)
        for scope in self._scopes(module.tree):
            if (
                isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
                and scope.name in helpers
            ):
                continue
            float_names = _float_annotated_names(scope)
            for node in self._walk_scope(scope):
                if not isinstance(node, ast.Compare):
                    continue
                left = node.left
                for op, right in zip(node.ops, node.comparators, strict=True):
                    if isinstance(op, (ast.Eq, ast.NotEq)):
                        literal_only = isinstance(left, ast.Constant) and isinstance(
                            right, ast.Constant
                        )
                        if not literal_only and (
                            _is_floatish(left, float_names)
                            or _is_floatish(right, float_names)
                        ):
                            findings.append(
                                self.finding(
                                    module.rel,
                                    node,
                                    f"float {'==' if isinstance(op, ast.Eq) else '!='} "
                                    f"comparison ({ast.unparse(node)[:60]}); exact "
                                    "equality is unstable across backends",
                                )
                            )
                            break
                    left = right
        return findings

    @staticmethod
    def _scopes(tree: ast.Module) -> list[ast.AST]:
        scopes: list[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        return scopes

    @staticmethod
    def _walk_scope(scope: ast.AST) -> Iterable[ast.AST]:
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

"""R1 — determinism: all randomness flows through named RandomStreams.

Byte-identical records across worker counts and backends (the PR 1/3/5
contract) hold only if no code path reads ambient entropy.  This rule bans,
everywhere outside the RNG module itself:

* module-level ``random`` functions (``random.random()``, ``choice`` …) and
  names imported from :mod:`random` — they share the process-global
  generator;
* **unseeded** ``random.Random()`` — it seeds from OS entropy
  (explicitly-seeded ``random.Random(seed)`` is allowed: deterministic);
* anything under ``numpy.random`` — NumPy draws are not stream-exact with
  the pure-Python backend;
* wall clocks (``time.time``/``monotonic``/``perf_counter``,
  ``datetime.now``/``utcnow``/``today``) outside the profiling module;
* ``os.urandom`` and ``uuid.uuid1``/``uuid.uuid4``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.contracts import LintConfig
from repro.analysis.framework import Finding, ModuleContext, Rule, register

#: random-module functions that draw from (or reseed) the global generator.
_RANDOM_FUNCS = {
    "random",
    "uniform",
    "randint",
    "randrange",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "triangular",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "binomialvariate",
    "getrandbits",
    "randbytes",
    "seed",
}

_CLOCK_FUNCS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}
_UUID_FUNCS = {"uuid1", "uuid4"}


def _import_aliases(tree: ast.Module) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """(module alias -> module name, bare name -> (module, original name))."""
    modules: dict[str, str] = {}
    names: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                names[alias.asname or alias.name] = (node.module, alias.name)
    return modules, names


@register
class DeterminismRule(Rule):
    rule_id = "R1"
    name = "determinism"
    description = (
        "Ambient entropy (global random functions, unseeded Random, "
        "numpy.random, wall clocks, os.urandom, uuid4) is banned outside "
        "the RNG module; draw from named RandomStreams instead."
    )

    def check_module(
        self, module: ModuleContext, config: LintConfig
    ) -> Iterable[Finding]:
        if any(module.matches(path) for path in config.determinism_exempt):
            return []
        clocks_allowed = any(module.matches(path) for path in config.clock_exempt)
        modules, names = _import_aliases(module.tree)
        findings: list[Finding] = []

        def module_of(name: str) -> str:
            return modules.get(name, "")

        banned_bare: dict[str, str] = {}
        for bare, (source, original) in names.items():
            if source == "random" and original in _RANDOM_FUNCS:
                banned_bare[bare] = f"random.{original}"
            elif source == "random" and original == "Random":
                # Tracked separately: only unseeded construction is banned.
                continue
            elif source == "time" and original in _CLOCK_FUNCS and not clocks_allowed:
                banned_bare[bare] = f"time.{original}"
            elif source == "os" and original == "urandom":
                banned_bare[bare] = f"os.{original}"
            elif source == "uuid" and original in _UUID_FUNCS:
                banned_bare[bare] = f"uuid.{original}"

        random_class_aliases: set[str] = {
            bare
            for bare, (source, original) in names.items()
            if source == "random" and original == "Random"
        }
        datetime_class_aliases: set[str] = {
            bare
            for bare, (source, original) in names.items()
            if source == "datetime" and original in ("datetime", "date", "time")
        }

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                root = node.value
                if isinstance(root, ast.Name):
                    source = module_of(root.id)
                    if source == "random" and node.attr in _RANDOM_FUNCS:
                        findings.append(
                            self.finding(
                                module.rel,
                                node,
                                f"call to global random.{node.attr}; draw from a "
                                "named RandomStreams stream instead",
                            )
                        )
                    elif source == "numpy" and node.attr == "random":
                        findings.append(
                            self.finding(
                                module.rel,
                                node,
                                "numpy.random is not stream-exact with the python "
                                "backend; derive draws from RandomStreams",
                            )
                        )
                    elif source == "time" and node.attr in _CLOCK_FUNCS and not clocks_allowed:
                        findings.append(
                            self.finding(
                                module.rel,
                                node,
                                f"wall clock time.{node.attr} breaks record "
                                "reproducibility; pass times through the simulation",
                            )
                        )
                    elif source == "os" and node.attr == "urandom":
                        findings.append(
                            self.finding(module.rel, node, "os.urandom is ambient entropy")
                        )
                    elif source == "uuid" and node.attr in _UUID_FUNCS:
                        findings.append(
                            self.finding(
                                module.rel,
                                node,
                                f"uuid.{node.attr} is nondeterministic; derive ids "
                                "from the master seed",
                            )
                        )
                    elif node.attr in _DATETIME_FUNCS and (
                        source == "datetime" or root.id in datetime_class_aliases
                    ):
                        findings.append(
                            self.finding(
                                module.rel,
                                node,
                                f"{root.id}.{node.attr}() reads the wall clock; "
                                "records must not depend on run time",
                            )
                        )
                elif (
                    isinstance(root, ast.Attribute)
                    and isinstance(root.value, ast.Name)
                    and module_of(root.value.id) == "datetime"
                    and node.attr in _DATETIME_FUNCS
                ):
                    findings.append(
                        self.finding(
                            module.rel,
                            node,
                            f"datetime.{root.attr}.{node.attr}() reads the wall clock",
                        )
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                unseeded = not node.args and not node.keywords
                if isinstance(func, ast.Name):
                    if func.id in banned_bare:
                        findings.append(
                            self.finding(
                                module.rel,
                                node,
                                f"call to {banned_bare[func.id]} (imported as "
                                f"{func.id}); use a named RandomStreams stream",
                            )
                        )
                    elif func.id in random_class_aliases and unseeded:
                        findings.append(
                            self.finding(
                                module.rel,
                                node,
                                "unseeded random.Random() seeds from OS entropy; "
                                "pass an explicit seed or a RandomStreams stream",
                            )
                        )
                elif (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and module_of(func.value.id) == "random"
                    and func.attr == "Random"
                    and unseeded
                ):
                    findings.append(
                        self.finding(
                            module.rel,
                            node,
                            "unseeded random.Random() seeds from OS entropy; "
                            "pass an explicit seed or a RandomStreams stream",
                        )
                    )
        return findings

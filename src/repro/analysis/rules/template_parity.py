"""R7 — template parity: the template library mirrors the scenario catalog.

The declarative front-end (:mod:`repro.scenarios.schema`) is only an
equivalent surface while two invariants hold: every shipped template file
declares a *supported* ``schema_version`` (an unversioned template cannot be
migrated when the schema moves), and every catalog scenario has a template
counterpart (a catalog entry merged without one silently re-grows the
Python-only workload set the schema exists to eliminate).  This rule
cross-references the ``CATALOG`` dict literal against the shipped
``templates/`` directory and fails with the missing names listed.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from collections.abc import Iterable

from repro.analysis.contracts import LintConfig
from repro.analysis.framework import Finding, ProjectContext, Rule, register

#: Template suffixes the library recognises (kept in sync with
#: repro.scenarios.schema.library.TEMPLATE_SUFFIXES, duplicated here so the
#: lint suite never imports the runtime package it checks).
_TEMPLATE_SUFFIXES = (".yaml", ".yml", ".json")


def _load_document(path: Path) -> object:
    if path.suffix == ".json":
        return json.loads(path.read_text(encoding="utf-8"))
    import yaml

    return yaml.safe_load(path.read_text(encoding="utf-8"))


@register
class TemplateParityRule(Rule):
    rule_id = "R7"
    name = "template-parity"
    description = (
        "Every template declares a supported schema_version and every "
        "catalog scenario has a template counterpart."
    )

    def check_project(
        self, project: ProjectContext, config: LintConfig
    ) -> Iterable[Finding]:
        if not config.template_dir or not config.catalog_module:
            return []
        catalog = project.find_module(config.catalog_module)
        if catalog is None:
            # Catalog outside the linted paths (e.g. single-file run).
            return []
        catalog_names, catalog_line = self._catalog_names(catalog.tree)
        if not catalog_names:
            return [
                Finding(
                    rule=self.rule_id,
                    name=self.name,
                    path=catalog.rel,
                    line=1,
                    column=1,
                    message=(
                        "CATALOG dict literal with string keys not found in "
                        f"{catalog.rel}; template parity cannot be checked"
                    ),
                )
            ]
        template_dir = project.root / config.template_dir
        if not template_dir.is_dir():
            return [
                Finding(
                    rule=self.rule_id,
                    name=self.name,
                    path=catalog.rel,
                    line=catalog_line,
                    column=1,
                    message=(
                        f"template directory {config.template_dir!r} not found "
                        f"under {project.root}; refusing to silently pass"
                    ),
                )
            ]
        findings: list[Finding] = []
        template_names: set[str] = set()
        for path in sorted(template_dir.iterdir()):
            if path.suffix not in _TEMPLATE_SUFFIXES:
                continue
            rel = path.relative_to(project.root).as_posix()
            try:
                document = _load_document(path)
            except Exception as error:  # malformed file: parity still checkable
                findings.append(self._file_finding(rel, f"unreadable template: {error}"))
                continue
            if not isinstance(document, dict):
                findings.append(self._file_finding(rel, "template document is not a mapping"))
                continue
            version = document.get("schema_version")
            if version not in config.template_schema_versions:
                findings.append(
                    self._file_finding(
                        rel,
                        f"schema_version {version!r} is not supported "
                        f"(supported: {list(config.template_schema_versions)})",
                    )
                )
            name = document.get("name")
            if isinstance(name, str):
                template_names.add(name)
        missing = sorted(catalog_names - template_names)
        if missing:
            findings.append(
                Finding(
                    rule=self.rule_id,
                    name=self.name,
                    path=catalog.rel,
                    line=catalog_line,
                    column=1,
                    message=(
                        "catalog scenarios without a template counterpart "
                        f"under {config.template_dir}/: {missing}"
                    ),
                )
            )
        return findings

    def _file_finding(self, rel: str, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            name=self.name,
            path=rel,
            line=1,
            column=1,
            message=message,
        )

    @staticmethod
    def _catalog_names(tree: ast.Module) -> tuple[set[str], int]:
        """String keys of the module-level ``CATALOG`` dict literal."""
        for node in ast.walk(tree):
            target: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target = node.target
                value = node.value
            else:
                continue
            if (
                isinstance(target, ast.Name)
                and target.id == "CATALOG"
                and isinstance(value, ast.Dict)
            ):
                names = {
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                }
                return names, node.lineno
        return set(), 1

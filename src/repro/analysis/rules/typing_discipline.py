"""R6 — typing discipline: the local half of the strict-typing gate.

CI runs mypy with ``disallow_untyped_defs``/``no_implicit_optional``; this
rule enforces the part of that contract that is checkable from the AST
alone, so contributors without mypy installed still catch the bulk of
violations before pushing:

* every function parameter (except ``self``/``cls``), ``*args``/``**kwargs``
  and return value must be annotated (``__init__`` included — mypy strict
  requires its ``-> None``);
* a parameter defaulting to ``None`` must say so in its annotation
  (``X | None``, ``Optional[X]``, ``Any`` or ``object``) — the implicit
  Optional mypy no longer accepts.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.contracts import LintConfig
from repro.analysis.framework import Finding, ModuleContext, Rule, register


def _accepts_none(annotation: ast.expr) -> bool:
    """Whether the annotation's *top level* admits None (mypy's rule)."""
    # String annotations: unwrap the quoting level and re-parse.
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return True
    if isinstance(annotation, ast.Name):
        return annotation.id in ("Any", "object")
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Any", "object")
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else ""
        )
        if head_name == "Optional":
            return True
        if head_name == "Union":
            elements = (
                annotation.slice.elts
                if isinstance(annotation.slice, ast.Tuple)
                else [annotation.slice]
            )
            return any(_accepts_none(element) for element in elements)
        return False
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _accepts_none(annotation.left) or _accepts_none(annotation.right)
    return False


@register
class TypingDisciplineRule(Rule):
    rule_id = "R6"
    name = "typing"
    description = (
        "All defs must be fully annotated and Optional parameters explicit "
        "— the AST-checkable half of the mypy strict gate."
    )

    def check_module(
        self, module: ModuleContext, config: LintConfig
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            missing: list[str] = []
            for index, arg in enumerate(positional):
                if index == 0 and arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            missing.extend(arg.arg for arg in args.kwonlyargs if arg.annotation is None)
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if missing:
                findings.append(
                    self.finding(
                        module.rel,
                        node,
                        f"def {node.name} has unannotated parameters: "
                        f"{', '.join(missing)}",
                    )
                )
            if node.returns is None:
                findings.append(
                    self.finding(
                        module.rel,
                        node,
                        f"def {node.name} has no return annotation"
                        + (" (use -> None)" if node.name == "__init__" else ""),
                    )
                )
            defaults = list(args.defaults)
            # defaults align right-justified against positional parameters.
            for arg, default in zip(positional[len(positional) - len(defaults):], defaults, strict=True):
                self._check_optional(module, node, arg, default, findings)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults, strict=True):
                if default is not None:
                    self._check_optional(module, node, arg, default, findings)
        return findings

    def _check_optional(
        self,
        module: ModuleContext,
        func: ast.AST,
        arg: ast.arg,
        default: ast.expr,
        findings: list[Finding],
    ) -> None:
        if not (isinstance(default, ast.Constant) and default.value is None):
            return
        if arg.annotation is None or _accepts_none(arg.annotation):
            return
        findings.append(
            self.finding(
                module.rel,
                arg,
                f"parameter {arg.arg!r} defaults to None but its annotation "
                f"({ast.unparse(arg.annotation)}) does not allow None "
                "(implicit Optional)",
            )
        )

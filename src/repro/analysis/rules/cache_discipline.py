"""R3 — cache discipline: mutations must bump version/epoch counters.

The incremental-refresh layer (PR 5) keys every derived cache on a monotone
counter: :class:`FeedbackStore` bumps ``_version``/``_epoch``,
:class:`SocialGraph` bumps ``_version`` via ``_invalidate_caches``, and the
derived caches (:class:`LocalTrustBuilder`, :class:`TrustOverlayNetwork`)
re-validate against those counters on every read.  A mutating method that
forgets the bump silently serves stale scores — the worst kind of
reproducibility bug, because small tests rarely hit the stale window.

The rule is driven by the :class:`~repro.analysis.contracts.CacheContract`
registry:

* **owner** classes: any method that writes primary ``self`` state
  (assignment, augmented assignment, or a mutating call such as
  ``self._field.append(...)``) must also bump a declared counter or call a
  declared invalidator;
* **derived** classes: any method that writes a declared cache field must
  read the declared upstream counter (``self._store.epoch``) somewhere in
  its body.

Writes to declared ``cache_fields`` never require a bump (they *are* the
caches), and access through local aliases is invisible to the analysis —
keep mutations on ``self`` attributes direct where possible.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.contracts import CacheContract, LintConfig
from repro.analysis.framework import Finding, ModuleContext, Rule, register

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = {
    "append",
    "add",
    "extend",
    "insert",
    "update",
    "clear",
    "pop",
    "popitem",
    "remove",
    "discard",
    "setdefault",
    "sort",
    "reverse",
}


def _self_attr(node: ast.expr) -> str:
    """``self.x`` -> ``"x"``; anything else -> ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _self_attr_path(node: ast.expr) -> str:
    """``self.a.b.c`` -> ``"a.b.c"``; anything else -> ``""``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self" and parts:
        return ".".join(reversed(parts))
    return ""


class _MethodScan:
    """What a method does to ``self`` state, statically."""

    def __init__(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.written: set[str] = set()
        self.mutated: set[str] = set()
        self.called: set[str] = set()
        self.read_paths: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if target is None:
                        continue
                    attr = _self_attr(target)
                    if attr:
                        self.written.add(attr)
                    elif isinstance(target, ast.Subscript):
                        # self._field[key] = ... mutates the container.
                        attr = _self_attr(target.value)
                        if attr:
                            self.mutated.add(attr)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                attr = _self_attr(receiver)
                if attr and node.func.attr in _MUTATING_METHODS:
                    self.mutated.add(attr)
                if isinstance(receiver, ast.Name) and receiver.id == "self":
                    self.called.add(node.func.attr)
            if isinstance(node, ast.Attribute):
                path = _self_attr_path(node)
                if path:
                    self.read_paths.add(path)


@register
class CacheDisciplineRule(Rule):
    rule_id = "R3"
    name = "cache-discipline"
    description = (
        "Registered cache-owning classes must bump their version/epoch "
        "counter on every primary-state mutation; derived caches must "
        "consult their upstream counter before reuse."
    )

    def check_module(
        self, module: ModuleContext, config: LintConfig
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        contracts = [c for c in config.cache_contracts if module.matches(c.module)]
        if not contracts:
            return findings
        by_class = {c.class_name: c for c in contracts}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in by_class:
                findings.extend(self._check_class(module, node, by_class[node.name]))
        return findings

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef, contract: CacheContract
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        exempt = set(contract.exempt_methods)
        cache_fields = set(contract.cache_fields)
        counters = set(contract.counters)
        invalidators = set(contract.invalidators)
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in exempt or item.name in invalidators:
                continue
            scan = _MethodScan(item)
            if counters:
                primary_writes = (scan.written | scan.mutated) - cache_fields - counters
                if not primary_writes:
                    continue
                bumps = bool(scan.written & counters) or bool(scan.called & invalidators)
                if not bumps:
                    findings.append(
                        self.finding(
                            module.rel,
                            item,
                            f"{cls.name}.{item.name} mutates "
                            f"{sorted(primary_writes)} without bumping "
                            f"{sorted(counters)} or calling an invalidator; "
                            "stale caches would survive the mutation",
                        )
                    )
            elif contract.source_counters:
                cache_writes = (scan.written | scan.mutated) & cache_fields
                if not cache_writes:
                    continue
                consulted = any(
                    source in scan.read_paths for source in contract.source_counters
                )
                if not consulted:
                    findings.append(
                        self.finding(
                            module.rel,
                            item,
                            f"{cls.name}.{item.name} writes cache fields "
                            f"{sorted(cache_writes)} without reading "
                            f"{sorted(contract.source_counters)}; the cache "
                            "could be reused across an upstream mutation",
                        )
                    )
        return findings

"""R4 — accel purity: every acceleration flag has a byte-agreement test.

The switchboard contract (:mod:`repro.core.accel`) is that flipping any flag
never changes a record byte.  That contract only holds while each flag is
*exercised*: a new flag merged without a cold-vs-accelerated agreement test
is an unchecked claim.  This rule parses the ``AccelFlags`` dataclass for
its boolean fields and requires, for each, at least one test module that
names the flag **and** drives the switchboard (``accel.override(...)``,
``set_flags(...)`` or the ``REPRO_ACCEL`` environment knob).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.contracts import LintConfig
from repro.analysis.framework import Finding, ProjectContext, Rule, register

_DRIVER_MARKERS = ("override(", "set_flags(", "REPRO_ACCEL")


@register
class AccelPurityRule(Rule):
    rule_id = "R4"
    name = "accel-purity"
    description = (
        "Every AccelFlags field must be exercised by a test that drives the "
        "switchboard and asserts cold/accelerated agreement."
    )

    def check_project(
        self, project: ProjectContext, config: LintConfig
    ) -> Iterable[Finding]:
        if not config.accel_module:
            return []
        accel = project.find_module(config.accel_module)
        if accel is None:
            # The switchboard is outside the linted paths (e.g. linting a
            # single unrelated file); nothing to cross-reference.
            return []
        flags = self._flag_fields(accel.tree, config.accel_class)
        if not flags:
            return [
                Finding(
                    rule=self.rule_id,
                    name=self.name,
                    path=accel.rel,
                    line=1,
                    column=1,
                    message=(
                        f"class {config.accel_class} with boolean flag fields "
                        f"not found in {accel.rel}; the accel-purity contract "
                        "cannot be checked"
                    ),
                )
            ]
        if project.tests_root is None or not project.tests_root.is_dir():
            return [
                Finding(
                    rule=self.rule_id,
                    name=self.name,
                    path=accel.rel,
                    line=1,
                    column=1,
                    message=(
                        "no test tree available to cross-reference accel flags "
                        "(pass --tests); refusing to silently pass"
                    ),
                )
            ]
        covered = set()
        for test_file in sorted(project.tests_root.rglob("*.py")):
            text = test_file.read_text()
            if not any(marker in text for marker in _DRIVER_MARKERS):
                continue
            for flag in flags:
                if flag in text:
                    covered.add(flag)
        findings: list[Finding] = []
        for flag, line in flags.items():
            if flag in set(config.accel_exempt) or flag in covered:
                continue
            findings.append(
                Finding(
                    rule=self.rule_id,
                    name=self.name,
                    path=accel.rel,
                    line=line,
                    column=1,
                    message=(
                        f"accel flag {flag!r} has no byte-agreement test: no "
                        "module under the test tree names it while driving "
                        "override()/set_flags()/REPRO_ACCEL"
                    ),
                )
            )
        return findings

    @staticmethod
    def _flag_fields(tree: ast.Module, class_name: str) -> dict[str, int]:
        """Boolean dataclass fields of the flags class -> definition line."""
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                fields: dict[str, int] = {}
                for item in node.body:
                    if (
                        isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)
                        and isinstance(item.annotation, ast.Name)
                        and item.annotation.id == "bool"
                    ):
                        fields[item.target.id] = item.lineno
                return fields
        return {}

"""The annotation registry: which invariants apply where.

``repro-lint`` rules are generic AST walkers; this module binds them to the
repository's actual contracts — which classes carry cache counters, which
module owns randomness, which helpers are allowed to compare floats exactly.
Tests inject purpose-built configs to prove rules fire; the CLI uses
:func:`default_config`, which encodes the live tree's invariants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheContract:
    """Cache-discipline contract (rule R3) for one class.

    Two shapes exist:

    * **Owner** classes (``counters`` non-empty) hold primary state plus
      derived caches and expose monotone change counters.  Every method that
      mutates primary state must bump a counter (``self._version += 1``) or
      call one of the ``invalidators``.
    * **Derived** classes (``source_counters`` non-empty) hold only caches
      keyed on another object's counter.  Every method that writes a cache
      field must read at least one of the declared source counters, so the
      cache can never be reused across a source mutation.
    """

    module: str
    class_name: str
    #: Own monotone counter attributes (owner classes).
    counters: tuple[str, ...] = ()
    #: Methods that perform the bump/invalidation on the caller's behalf.
    invalidators: tuple[str, ...] = ()
    #: Derived/cache attributes: writing these never requires a bump.
    cache_fields: tuple[str, ...] = ()
    #: Attribute paths (relative to ``self``) of the upstream counters a
    #: derived cache must consult, e.g. ``"_store.epoch"``.
    source_counters: tuple[str, ...] = ()
    #: Methods exempt from the check (constructors by default).
    exempt_methods: tuple[str, ...] = ("__init__", "__post_init__")


@dataclass(frozen=True)
class LintConfig:
    """Everything rule behaviour can be parameterized on."""

    #: Modules (path suffixes) allowed to touch raw randomness (R1).
    determinism_exempt: tuple[str, ...] = ()
    #: Modules additionally allowed to read wall clocks (R1): profiling.
    clock_exempt: tuple[str, ...] = ()
    #: Function names whose return value is an unordered set even without a
    #: visible annotation at the call site (R2 tracks cross-module calls).
    set_returning: tuple[str, ...] = ()
    #: Cache contracts keyed by class name (R3).
    cache_contracts: tuple[CacheContract, ...] = ()
    #: Module suffix of the acceleration switchboard and its flags class (R4).
    accel_module: str = ""
    accel_class: str = "AccelFlags"
    #: Accel flags that legitimately need no dedicated byte-agreement test.
    accel_exempt: tuple[str, ...] = ()
    #: Function names that may compare floats exactly (R5): quantizers that
    #: snap values to a grid before comparing.
    float_eq_helpers: tuple[str, ...] = ()
    #: Directory (relative to the lint root) holding the shipped scenario
    #: templates (R7); empty disables the parity check.
    template_dir: str = ""
    #: Module suffix of the scenario catalog whose ``CATALOG`` dict literal
    #: R7 cross-references against the template library.
    catalog_module: str = ""
    #: ``schema_version`` values a shipped template may declare (R7).
    template_schema_versions: tuple[int, ...] = ()
    #: Function names recognised as structured-error-record emitters (R8): a
    #: broad ``except Exception`` handler is disciplined if it re-raises or
    #: calls one of these.
    error_record_calls: tuple[str, ...] = ()
    #: Directories (relative to the project root) that are *clients* of the
    #: public API (R9): modules there may import only the blessed facade,
    #: never package internals.  Empty disables the boundary check.
    api_client_dirs: tuple[str, ...] = ()
    #: Module names the client trees may import (R9).  A module passes when
    #: every ``repro…`` import names exactly one of these (``repro`` itself
    #: or the ``repro.api`` facade — never a dotted internal module).
    api_allowed_imports: tuple[str, ...] = ()

    def contracts_by_class(self) -> dict[str, tuple[CacheContract, ...]]:
        table: dict[str, tuple[CacheContract, ...]] = {}
        for contract in self.cache_contracts:
            table[contract.class_name] = table.get(contract.class_name, ()) + (contract,)
        return table


#: The live tree's cache-discipline contracts.  Adding a cached/derived
#: field to one of these classes?  Extend the contract, or R3 will not see
#: it; adding a *new* cached class?  Register it here.
DEFAULT_CACHE_CONTRACTS: tuple[CacheContract, ...] = (
    CacheContract(
        module="repro/reputation/gathering.py",
        class_name="FeedbackStore",
        counters=("_version", "_epoch"),
        cache_fields=(
            "_columns",
            "_columns_stale",
            "_participants_state",
            "_participants_sorted",
        ),
    ),
    CacheContract(
        module="repro/reputation/gathering.py",
        class_name="LocalTrustBuilder",
        cache_fields=("_totals", "_watermark", "_dense_state"),
        source_counters=("_store.epoch",),
    ),
    CacheContract(
        module="repro/socialnet/graph.py",
        class_name="SocialGraph",
        counters=("_version",),
        invalidators=("_invalidate_caches",),
        cache_fields=("_neighbors_cache", "_users_cache", "_user_ids_cache"),
    ),
    CacheContract(
        module="repro/reputation/overlay.py",
        class_name="TrustOverlayNetwork",
        cache_fields=("_centrality_cache",),
        source_counters=("_store.version",),
    ),
)


def default_config() -> LintConfig:
    """The configuration encoding the live repository's invariants."""
    return LintConfig(
        determinism_exempt=("repro/simulation/rng.py",),
        clock_exempt=("repro/_profiling.py", "repro/serving/sla.py"),
        set_returning=("participants",),
        cache_contracts=DEFAULT_CACHE_CONTRACTS,
        accel_module="repro/core/accel.py",
        accel_class="AccelFlags",
        accel_exempt=(),
        float_eq_helpers=("_quantized",),
        template_dir="templates",
        catalog_module="repro/scenarios/catalog.py",
        template_schema_versions=(1,),
        # ``request_failure_record`` is the serving layer's emitter: broad
        # excepts in ``serving/`` must surface a structured 500 record.
        error_record_calls=(
            "task_failure_record",
            "finding",
            "_file_finding",
            "request_failure_record",
        ),
        api_client_dirs=("examples", "benchmarks"),
        api_allowed_imports=("repro", "repro.api"),
    )

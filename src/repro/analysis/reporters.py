"""Render lint results as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.framework import LintResult


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """GCC-style ``path:line:col: RULE[name] message`` lines plus a summary."""
    lines: list[str] = []
    for finding in result.active:
        lines.append(
            f"{finding.location()}: {finding.rule}[{finding.name}] {finding.message}"
        )
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule}[{finding.name}] "
                f"(suppressed) {finding.message}"
            )
    counts = result.counts()
    if counts:
        per_rule = ", ".join(f"{rule}: {count}" for rule, count in sorted(counts.items()))
        lines.append(
            f"repro-lint: {len(result.active)} finding(s) in "
            f"{result.checked_files} file(s) ({per_rule}); "
            f"{len(result.suppressed)} suppressed"
        )
    else:
        lines.append(
            f"repro-lint: clean — {result.checked_files} file(s), "
            f"{len(result.suppressed)} suppressed finding(s)"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document (sorted keys) suitable as a CI artifact."""
    document: dict[str, object] = {
        "version": 1,
        "checked_files": result.checked_files,
        "counts": result.counts(),
        "findings": [finding.as_dict() for finding in result.findings],
        "clean": not result.active,
    }
    return json.dumps(document, indent=2, sort_keys=True)

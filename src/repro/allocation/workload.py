"""Synthetic query workloads for the allocation substrate."""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro._util import require_unit_interval
from repro.errors import ConfigurationError
from repro.allocation.query import Query


@dataclass
class WorkloadSpec:
    """Specification of a query workload.

    ``topic_skew`` interpolates between a uniform topic mix (0) and a highly
    skewed one (1) where the first topic dominates — skew is what makes
    quality- and intention-aware allocation matter.
    """

    topics: Sequence[str] = ("music", "photos", "news", "files", "events")
    queries_per_consumer_per_round: float = 1.0
    topic_skew: float = 0.3
    cost_range: tuple = (0.5, 2.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.topics:
            raise ConfigurationError("workload needs at least one topic")
        if self.queries_per_consumer_per_round < 0:
            raise ConfigurationError("queries_per_consumer_per_round must be >= 0")
        require_unit_interval(self.topic_skew, "topic_skew")
        low, high = self.cost_range
        if low <= 0 or high < low:
            raise ConfigurationError("cost_range must be (low > 0, high >= low)")


class WorkloadGenerator:
    """Generates per-round query batches for a set of consumers."""

    def __init__(self, spec: WorkloadSpec, consumers: Sequence[str]) -> None:
        if not consumers:
            raise ConfigurationError("workload needs at least one consumer")
        self.spec = spec
        self.consumers = list(consumers)
        self._rng = random.Random(spec.seed)
        self._query_counter = 0
        self._topic_weights = self._build_topic_weights()

    def _build_topic_weights(self) -> list[float]:
        n = len(self.spec.topics)
        uniform = [1.0 / n] * n
        # Zipf-like skewed profile, heaviest on the first topic.
        skewed_raw = [1.0 / (rank + 1) for rank in range(n)]
        total = sum(skewed_raw)
        skewed = [value / total for value in skewed_raw]
        skew = self.spec.topic_skew
        return [(1.0 - skew) * uniform[i] + skew * skewed[i] for i in range(n)]

    def topic_distribution(self) -> dict[str, float]:
        return dict(zip(self.spec.topics, self._topic_weights, strict=True))

    def _draw_topic(self) -> str:
        return self._rng.choices(list(self.spec.topics), weights=self._topic_weights, k=1)[0]

    def round_queries(self, round_index: int) -> list[Query]:
        """Generate the query batch for one round."""
        queries: list[Query] = []
        expected = self.spec.queries_per_consumer_per_round
        low_cost, high_cost = self.spec.cost_range
        for consumer in self.consumers:
            count = int(expected)
            if self._rng.random() < expected - count:
                count += 1
            for _ in range(count):
                self._query_counter += 1
                queries.append(
                    Query(
                        query_id=self._query_counter,
                        consumer=consumer,
                        topic=self._draw_topic(),
                        time=round_index,
                        cost=self._rng.uniform(low_cost, high_cost),
                    )
                )
        self._rng.shuffle(queries)
        return queries

    def rounds(self, n_rounds: int) -> Iterator[list[Query]]:
        """Iterate over ``n_rounds`` query batches."""
        if n_rounds < 0:
            raise ConfigurationError("n_rounds must be non-negative")
        for round_index in range(n_rounds):
            yield self.round_queries(round_index)

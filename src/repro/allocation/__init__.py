"""Query allocation: the concrete "system process" participants judge.

The satisfaction model the paper builds on (Section 2.1) comes from query
allocation in distributed information systems: consumers submit queries, a
mediator allocates each query to one of several autonomous providers, and
both sides form long-run satisfaction from how well the allocations match
their intentions.  This subpackage provides that substrate:

* :mod:`repro.allocation.query` — queries and their results;
* :mod:`repro.allocation.participants` — provider and consumer agents;
* :mod:`repro.allocation.strategies` — allocation strategies (capacity-based,
  quality-based, random, reputation-aware and the satisfaction-balanced
  strategy in the spirit of SbQA);
* :mod:`repro.allocation.mediator` — the mediator executing allocations and
  feeding the satisfaction tracker;
* :mod:`repro.allocation.workload` — synthetic query workload generation.
"""

from repro.allocation.mediator import AllocationRecord, MediatorReport, QueryMediator
from repro.allocation.participants import ConsumerAgent, ProviderAgent
from repro.allocation.query import Query, QueryResult
from repro.allocation.strategies import (
    AllocationStrategy,
    CapacityBasedAllocation,
    QualityBasedAllocation,
    RandomAllocation,
    ReputationAwareAllocation,
    SatisfactionBalancedAllocation,
)
from repro.allocation.workload import WorkloadGenerator, WorkloadSpec

__all__ = [
    "AllocationRecord",
    "AllocationStrategy",
    "CapacityBasedAllocation",
    "ConsumerAgent",
    "MediatorReport",
    "ProviderAgent",
    "QualityBasedAllocation",
    "Query",
    "QueryMediator",
    "QueryResult",
    "RandomAllocation",
    "ReputationAwareAllocation",
    "SatisfactionBalancedAllocation",
    "WorkloadGenerator",
    "WorkloadSpec",
]

"""The query mediator: allocate, execute, and feed the satisfaction model.

The mediator is the "system process" of Section 2.1: consumers hand it
queries, it chooses a provider through the configured strategy, the provider
treats the query, and both sides' adequacy observations flow into the
:class:`~repro.satisfaction.tracker.SatisfactionTracker` — including the
*imposed* flag when a provider was handed work it had little intention to
treat, which is what allocation satisfaction is about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._util import mean
from repro.errors import AllocationError, UnknownPeerError
from repro.allocation.participants import ConsumerAgent, ProviderAgent
from repro.allocation.query import Query, QueryResult
from repro.allocation.strategies import (
    AllocationContext,
    AllocationStrategy,
    SatisfactionBalancedAllocation,
)
from repro.satisfaction.adequacy import consumer_adequacy, provider_adequacy
from repro.satisfaction.tracker import SatisfactionTracker


@dataclass(frozen=True)
class AllocationRecord:
    """One allocation decision and its outcome."""

    query: Query
    provider: str
    quality: float
    consumer_adequacy: float
    provider_adequacy: float
    imposed_on_provider: bool


@dataclass
class MediatorReport:
    """Aggregates the experiments report for one mediator run."""

    allocations: int
    failed_allocations: int
    mean_quality: float
    mean_consumer_adequacy: float
    mean_provider_adequacy: float
    consumer_satisfaction: dict[str, float]
    provider_satisfaction: dict[str, float]
    provider_allocation_satisfaction: dict[str, float]


class QueryMediator:
    """Allocates queries to providers and tracks the resulting satisfaction."""

    #: Provider intention below which an allocation counts as *imposed*.
    imposition_threshold: float = 0.4

    def __init__(
        self,
        providers: list[ProviderAgent],
        consumers: list[ConsumerAgent],
        *,
        strategy: AllocationStrategy | None = None,
        tracker: SatisfactionTracker | None = None,
        reputation_scores: dict[str, float] | None = None,
        seed: int = 0,
    ) -> None:
        if not providers:
            raise AllocationError("the mediator needs at least one provider")
        self.providers = {provider.provider_id: provider for provider in providers}
        self.consumers = {consumer.consumer_id: consumer for consumer in consumers}
        self.strategy = strategy or SatisfactionBalancedAllocation()
        self.tracker = tracker or SatisfactionTracker()
        self._rng = random.Random(seed)
        self.context = AllocationContext(
            tracker=self.tracker,
            reputation_scores=reputation_scores,
            rng=self._rng,
        )
        self.records: list[AllocationRecord] = []
        self.failed_allocations = 0

    # -- per-query processing ------------------------------------------------

    def submit(self, query: Query) -> QueryResult | None:
        """Allocate and execute one query; ``None`` when no provider had capacity."""
        consumer = self.consumers.get(query.consumer)
        if consumer is None:
            raise UnknownPeerError(query.consumer)
        consumer.submitted_queries += 1
        try:
            provider = self.strategy.allocate(
                query, consumer, list(self.providers.values()), self.context
            )
        except AllocationError:
            self.failed_allocations += 1
            # An unserved query is maximally inadequate for its consumer.
            self.tracker.observe(consumer.consumer_id, 0.0, imposed=True)
            return None

        quality = provider.serve(query.topic, query.cost, rng=self._rng)
        consumer.note_result(quality, provider.provider_id)

        c_adequacy = consumer_adequacy(consumer.intention, provider.provider_id)
        p_adequacy = provider_adequacy(provider.intention, query.topic, consumer.consumer_id)
        imposed = p_adequacy < self.imposition_threshold

        self.tracker.observe(consumer.consumer_id, c_adequacy)
        self.tracker.observe(provider.provider_id, p_adequacy, imposed=imposed)

        record = AllocationRecord(
            query=query,
            provider=provider.provider_id,
            quality=quality,
            consumer_adequacy=c_adequacy,
            provider_adequacy=p_adequacy,
            imposed_on_provider=imposed,
        )
        self.records.append(record)
        return QueryResult(
            query=query,
            provider=provider.provider_id,
            quality=quality,
            imposed_on_provider=imposed,
        )

    def submit_batch(self, queries: list[Query]) -> list[QueryResult | None]:
        return [self.submit(query) for query in queries]

    def end_round(self) -> None:
        """Reset provider loads at a round boundary."""
        for provider in self.providers.values():
            provider.end_round()

    # -- reporting ----------------------------------------------------------

    def set_reputation_scores(self, scores: dict[str, float]) -> None:
        """Refresh the reputation scores reputation-aware strategies consult."""
        self.context.reputation_scores = dict(scores)

    def report(self) -> MediatorReport:
        return MediatorReport(
            allocations=len(self.records),
            failed_allocations=self.failed_allocations,
            mean_quality=mean(record.quality for record in self.records),
            mean_consumer_adequacy=mean(
                record.consumer_adequacy for record in self.records
            ),
            mean_provider_adequacy=mean(
                record.provider_adequacy for record in self.records
            ),
            consumer_satisfaction={
                consumer_id: self.tracker.satisfaction(consumer_id)
                for consumer_id in self.consumers
            },
            provider_satisfaction={
                provider_id: self.tracker.satisfaction(provider_id)
                for provider_id in self.providers
            },
            provider_allocation_satisfaction={
                provider_id: self.tracker.allocation_satisfaction(provider_id)
                for provider_id in self.providers
            },
        )

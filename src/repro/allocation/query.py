"""Queries submitted by consumers and the results providers return."""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_unit_interval
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Query:
    """A unit of work a consumer submits to the system.

    ``topic`` drives provider interest and competence; ``cost`` is the load
    the query puts on whichever provider treats it (in capacity units).
    """

    query_id: int
    consumer: str
    topic: str
    time: int = 0
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not self.topic:
            raise ConfigurationError("query topic must not be empty")
        if self.cost <= 0:
            raise ConfigurationError("query cost must be positive")


@dataclass(frozen=True)
class QueryResult:
    """The outcome of treating one query."""

    query: Query
    provider: str
    quality: float
    imposed_on_provider: bool = False

    def __post_init__(self) -> None:
        require_unit_interval(self.quality, "quality")

    @property
    def satisfactory(self) -> bool:
        """Whether the consumer would call the result good (quality ≥ 0.5)."""
        return self.quality >= 0.5

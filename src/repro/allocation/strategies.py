"""Query-allocation strategies.

The mediator delegates the *who treats this query* decision to a strategy.
Besides the obvious baselines (random, capacity-based, quality-based) two
strategies matter for the paper's experiments:

* :class:`SatisfactionBalancedAllocation` — in the spirit of the
  self-adaptable framework of Quiané-Ruiz et al.: the allocation score blends
  the consumer's preference for a provider, the provider's intention to treat
  the query and a boost for participants whose long-run satisfaction is
  lagging, so the system trades a little immediate quality for long-run
  balance (E-S1 measures the effect);
* :class:`ReputationAwareAllocation` — scores providers by their reputation,
  which is how the reputation facet concretely improves satisfaction (bullet
  3 of Section 3).
"""

from __future__ import annotations

import abc
import random
from collections.abc import Sequence

from repro._util import clamp, require_unit_interval
from repro.errors import AllocationError
from repro.allocation.participants import ConsumerAgent, ProviderAgent
from repro.allocation.query import Query
from repro.satisfaction.tracker import SatisfactionTracker


class AllocationStrategy(abc.ABC):
    """Choose the provider that will treat a query."""

    name: str = "abstract"

    @abc.abstractmethod
    def score(
        self,
        query: Query,
        consumer: ConsumerAgent,
        provider: ProviderAgent,
        context: AllocationContext,
    ) -> float:
        """Score a candidate provider for this query (higher is better)."""

    def allocate(
        self,
        query: Query,
        consumer: ConsumerAgent,
        providers: Sequence[ProviderAgent],
        context: AllocationContext,
    ) -> ProviderAgent:
        """Pick the best-scoring provider that still has capacity."""
        candidates = [p for p in providers if p.has_capacity(query.cost)]
        if not candidates:
            raise AllocationError(f"no provider has capacity for query {query.query_id}")
        scored = [
            (self.score(query, consumer, provider, context), provider.provider_id, provider)
            for provider in candidates
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return scored[0][2]


class AllocationContext:
    """Shared state strategies may consult (satisfaction, reputation, RNG)."""

    def __init__(
        self,
        *,
        tracker: SatisfactionTracker | None = None,
        reputation_scores: dict[str, float] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.tracker = tracker
        self.reputation_scores = reputation_scores or {}
        self.rng = rng or random.Random(0)


class RandomAllocation(AllocationStrategy):
    """Uniformly random among providers with capacity."""

    name = "random"

    def score(
        self,
        query: Query,
        consumer: ConsumerAgent,
        provider: ProviderAgent,
        context: AllocationContext,
    ) -> float:
        return context.rng.random()


class CapacityBasedAllocation(AllocationStrategy):
    """Prefer the least-loaded provider (classic load balancing)."""

    name = "capacity"

    def score(
        self,
        query: Query,
        consumer: ConsumerAgent,
        provider: ProviderAgent,
        context: AllocationContext,
    ) -> float:
        return 1.0 - provider.utilization


class QualityBasedAllocation(AllocationStrategy):
    """Prefer the provider most competent for the query topic."""

    name = "quality"

    def score(
        self,
        query: Query,
        consumer: ConsumerAgent,
        provider: ProviderAgent,
        context: AllocationContext,
    ) -> float:
        return provider.competence_for(query.topic)


class ReputationAwareAllocation(AllocationStrategy):
    """Prefer reputable providers, with competence as a tie-breaker."""

    name = "reputation"

    def __init__(self, *, reputation_weight: float = 0.7) -> None:
        self.reputation_weight = require_unit_interval(reputation_weight, "reputation_weight")

    def score(
        self,
        query: Query,
        consumer: ConsumerAgent,
        provider: ProviderAgent,
        context: AllocationContext,
    ) -> float:
        reputation = context.reputation_scores.get(provider.provider_id, 0.5)
        competence = provider.competence_for(query.topic)
        return clamp(
            self.reputation_weight * reputation
            + (1.0 - self.reputation_weight) * competence
        )


class SatisfactionBalancedAllocation(AllocationStrategy):
    """Balance consumer preference, provider intention and lagging satisfaction."""

    name = "satisfaction-balanced"

    def __init__(
        self,
        *,
        preference_weight: float = 0.4,
        intention_weight: float = 0.3,
        balance_weight: float = 0.3,
    ) -> None:
        total = preference_weight + intention_weight + balance_weight
        if total <= 0:
            raise AllocationError("strategy weights must not all be zero")
        self.preference_weight = preference_weight / total
        self.intention_weight = intention_weight / total
        self.balance_weight = balance_weight / total

    def score(
        self,
        query: Query,
        consumer: ConsumerAgent,
        provider: ProviderAgent,
        context: AllocationContext,
    ) -> float:
        preference = consumer.intention.preference(provider.provider_id)
        intention = provider.intention.intention_for(query.topic, consumer.consumer_id)
        if context.tracker is not None:
            # Boost providers whose long-run satisfaction lags: handing them
            # work they want is how the system keeps them on board.
            lag = 1.0 - context.tracker.satisfaction(provider.provider_id)
        else:
            lag = 0.5
        return clamp(
            self.preference_weight * preference
            + self.intention_weight * intention
            + self.balance_weight * lag
        )

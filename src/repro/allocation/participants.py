"""Provider and consumer agents of the query-allocation substrate."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._util import clamp, require_unit_interval
from repro.errors import ConfigurationError
from repro.satisfaction.intentions import ConsumerIntention, ProviderIntention


@dataclass
class ProviderAgent:
    """An autonomous provider with per-topic competence and bounded capacity."""

    provider_id: str
    intention: ProviderIntention
    competence: dict[str, float] = field(default_factory=dict)
    default_competence: float = 0.6
    capacity_per_round: int = 5
    current_load: float = 0.0
    treated_queries: int = 0

    def __post_init__(self) -> None:
        require_unit_interval(self.default_competence, "default_competence")
        for topic, value in self.competence.items():
            require_unit_interval(value, f"competence in {topic}")
        if self.capacity_per_round < 0:
            raise ConfigurationError("capacity_per_round must be non-negative")

    def competence_for(self, topic: str) -> float:
        return self.competence.get(topic, self.default_competence)

    @property
    def utilization(self) -> float:
        """Load relative to capacity, in ``[0, 1]`` (1 = saturated or above)."""
        if self.capacity_per_round == 0:
            return 1.0
        return clamp(self.current_load / self.capacity_per_round)

    def has_capacity(self, cost: float) -> bool:
        return self.current_load + cost <= self.capacity_per_round

    def serve(self, topic: str, cost: float, rng: random.Random | None = None) -> float:
        """Treat a query: consume capacity and return the delivered quality.

        Quality is the provider's competence for the topic degraded by its
        current utilization (an overloaded provider answers worse), with a
        small amount of noise.
        """
        # Deterministic fallback: an unseeded Random would pull OS entropy
        # into the run; the mediator always passes its own seeded rng.
        rng = rng or random.Random(0)
        self.current_load += cost
        self.treated_queries += 1
        overload_penalty = 0.3 * max(0.0, self.utilization - 0.8) / 0.2
        quality = self.competence_for(topic) * (1.0 - overload_penalty)
        quality += rng.gauss(0.0, 0.05)
        return clamp(quality)

    def end_round(self) -> None:
        """Reset the per-round load."""
        self.current_load = 0.0


@dataclass
class ConsumerAgent:
    """A consumer with preferences over providers and submission activity."""

    consumer_id: str
    intention: ConsumerIntention
    activity: float = 0.5
    submitted_queries: int = 0
    satisfied_results: int = 0

    def __post_init__(self) -> None:
        require_unit_interval(self.activity, "activity")

    def note_result(self, quality: float, provider: str, *, learn: bool = True) -> None:
        """Record the outcome of one query and update preferences from it."""
        require_unit_interval(quality, "quality")
        if quality >= 0.5:
            self.satisfied_results += 1
        if learn:
            self.intention.update_from_experience(provider, quality)

    @property
    def observed_satisfaction_rate(self) -> float:
        if self.submitted_queries == 0:
            return 0.0
        return self.satisfied_results / self.submitted_queries

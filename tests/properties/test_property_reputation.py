"""Property-based tests for the reputation mechanisms.

Invariants every mechanism must satisfy regardless of the feedback stream:
scores stay in [0, 1], known peers are exactly the store participants that
were rated, rankings are consistent with scores, and unanimous feedback is
scored on the right side of 0.5.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reputation.average import SimpleAverageReputation
from repro.reputation.beta import BetaReputation
from repro.reputation.eigentrust import EigenTrust
from repro.reputation.powertrust import PowerTrust
from repro.reputation.trustme import TrustMeReputation
from repro.simulation.transaction import Feedback

SUBJECTS = ["s0", "s1", "s2", "s3"]
RATERS = ["r0", "r1", "r2"]

MECHANISMS = [
    SimpleAverageReputation,
    BetaReputation,
    EigenTrust,
    PowerTrust,
    TrustMeReputation,
]


@st.composite
def feedback_batches(draw):
    size = draw(st.integers(min_value=1, max_value=40))
    batch = []
    for index in range(size):
        batch.append(
            Feedback(
                transaction_id=index,
                time=draw(st.integers(min_value=0, max_value=20)),
                subject=draw(st.sampled_from(SUBJECTS)),
                rating=draw(st.sampled_from([0.0, 1.0])),
                rater=draw(st.one_of(st.none(), st.sampled_from(RATERS))),
            )
        )
    return batch


@given(batch=feedback_batches(), mechanism=st.sampled_from(MECHANISMS))
@settings(max_examples=60, deadline=None)
def test_scores_always_in_unit_interval(batch, mechanism):
    system = mechanism()
    for feedback in batch:
        system.record_feedback(feedback)
    scores = system.scores()
    assert all(0.0 <= value <= 1.0 for value in scores.values())


@given(batch=feedback_batches(), mechanism=st.sampled_from(MECHANISMS))
@settings(max_examples=40, deadline=None)
def test_ranking_is_a_permutation_consistent_with_scores(batch, mechanism):
    system = mechanism()
    for feedback in batch:
        system.record_feedback(feedback)
    scores = system.scores()
    ranking = system.ranking()
    assert sorted(ranking) == sorted(scores)
    values = [scores[peer] for peer in ranking]
    assert values == sorted(values, reverse=True)


@given(
    mechanism=st.sampled_from([SimpleAverageReputation, BetaReputation, TrustMeReputation]),
    n_reports=st.integers(min_value=3, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_unanimous_feedback_lands_on_the_right_side(mechanism, n_reports):
    good = mechanism()
    bad = mechanism()
    for index in range(n_reports):
        good.record_feedback(
            Feedback(transaction_id=index, time=index, subject="peer", rating=1.0, rater="r0")
        )
        bad.record_feedback(
            Feedback(transaction_id=index, time=index, subject="peer", rating=0.0, rater="r0")
        )
    assert good.score("peer") >= 0.5
    assert bad.score("peer") <= 0.5
    assert good.score("peer") > bad.score("peer")


@given(batch=feedback_batches(), mechanism=st.sampled_from(MECHANISMS))
@settings(max_examples=30, deadline=None)
def test_reset_restores_a_blank_state(batch, mechanism):
    system = mechanism()
    for feedback in batch:
        system.record_feedback(feedback)
    system.reset()
    assert system.evidence_count == 0
    assert system.scores() == {}


@given(batch=feedback_batches())
@settings(max_examples=30, deadline=None)
def test_refresh_is_idempotent_without_new_evidence(batch):
    system = BetaReputation()
    for feedback in batch:
        system.record_feedback(feedback)
    first = system.refresh()
    second = system.refresh()
    assert first == second

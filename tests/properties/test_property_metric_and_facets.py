"""Property-based tests for the composite trust metric and facet scores."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facets import FacetScores
from repro.core.metric import Aggregator, CompositeTrustMetric

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
facet_scores = st.builds(FacetScores, privacy=unit, reputation=unit, satisfaction=unit)
aggregators = st.sampled_from(list(Aggregator))
positive_weight = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
weight_dicts = st.fixed_dictionaries(
    {"privacy": positive_weight, "reputation": positive_weight, "satisfaction": positive_weight}
)


@given(facets=facet_scores, aggregator=aggregators)
def test_trust_is_always_in_the_unit_interval(facets, aggregator):
    metric = CompositeTrustMetric(aggregator=aggregator)
    assert 0.0 <= metric.trust(facets) <= 1.0


@given(facets=facet_scores, aggregator=aggregators)
def test_trust_bounded_by_best_and_worst_facet(facets, aggregator):
    metric = CompositeTrustMetric(aggregator=aggregator)
    trust = metric.trust(facets)
    values = facets.as_dict().values()
    assert min(values) - 1e-6 <= trust <= max(values) + 1e-6


@given(facets=facet_scores, aggregator=aggregators, delta=unit)
@settings(max_examples=60)
def test_trust_is_monotone_in_every_facet(facets, aggregator, delta):
    metric = CompositeTrustMetric(aggregator=aggregator)
    base = metric.trust(facets)
    for name in ("privacy", "reputation", "satisfaction"):
        values = facets.as_dict()
        values[name] = min(1.0, values[name] + delta)
        assert metric.trust(FacetScores(**values)) >= base - 1e-9


@given(facets=facet_scores, weights=weight_dicts)
def test_weighted_metric_invariant_to_weight_rescaling(facets, weights):
    metric = CompositeTrustMetric(aggregator=Aggregator.WEIGHTED, weights=weights)
    scaled = CompositeTrustMetric(
        aggregator=Aggregator.WEIGHTED,
        weights={name: 3.7 * value for name, value in weights.items()},
    )
    assert abs(metric.trust(facets) - scaled.trust(facets)) < 1e-9


@given(value=unit, aggregator=aggregators)
def test_equal_facets_aggregate_to_themselves(value, aggregator):
    metric = CompositeTrustMetric(aggregator=aggregator)
    facets = FacetScores(privacy=value, reputation=value, satisfaction=value)
    assert abs(metric.trust(facets) - value) < 1e-6


@given(facets=facet_scores)
def test_minimum_aggregator_is_a_lower_bound_of_all_others(facets):
    minimum = CompositeTrustMetric(aggregator=Aggregator.MINIMUM).trust(facets)
    for aggregator in (Aggregator.WEIGHTED, Aggregator.GEOMETRIC, Aggregator.OWA):
        assert CompositeTrustMetric(aggregator=aggregator).trust(facets) >= minimum - 1e-9


@given(facets=facet_scores, aggregator=aggregators)
@settings(max_examples=60)
def test_contributions_are_nonnegative_and_bounded(facets, aggregator):
    metric = CompositeTrustMetric(aggregator=aggregator)
    contributions = metric.contributions(facets)
    for value in contributions.values():
        assert 0.0 <= value <= 1.0


@given(facets=facet_scores, threshold=unit)
def test_meets_threshold_agrees_with_min(facets, threshold):
    assert facets.meets(threshold) == (min(facets.as_dict().values()) >= threshold)

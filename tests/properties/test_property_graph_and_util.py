"""Property-based tests for graph generation, workloads and shared helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import clamp, ewma, normalize_distribution, normalize_weights
from repro.allocation.workload import WorkloadGenerator, WorkloadSpec
from repro.socialnet.generators import (
    TOPOLOGIES,
    SocialNetworkSpec,
    generate_social_network,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


@given(
    n_users=st.integers(min_value=5, max_value=60),
    topology=st.sampled_from(TOPOLOGIES),
    malicious=unit,
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_generated_networks_are_connected_with_the_requested_population(
    n_users, topology, malicious, seed
):
    spec = SocialNetworkSpec(
        n_users=n_users, topology=topology, malicious_fraction=malicious, seed=seed
    )
    graph = generate_social_network(spec)
    assert len(graph) == n_users
    assert graph.is_connected()
    dishonest = sum(1 for user in graph.users() if not user.is_honest)
    assert dishonest == int(round(malicious * n_users))


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_generation_is_deterministic_per_seed(seed):
    spec = SocialNetworkSpec(n_users=20, seed=seed)
    first = generate_social_network(spec)
    second = generate_social_network(spec)
    assert first.user_ids() == second.user_ids()
    assert first.number_of_edges() == second.number_of_edges()


@given(
    skew=unit,
    queries=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
    rounds=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_workload_ids_unique_and_topics_valid(skew, queries, seed, rounds):
    spec = WorkloadSpec(topic_skew=skew, queries_per_consumer_per_round=queries, seed=seed)
    generator = WorkloadGenerator(spec, ["c1", "c2", "c3"])
    ids = []
    for batch in generator.rounds(rounds):
        for query in batch:
            ids.append(query.query_id)
            assert query.topic in spec.topics
            assert spec.cost_range[0] <= query.cost <= spec.cost_range[1]
    assert len(ids) == len(set(ids))


@given(value=st.floats(allow_nan=False, allow_infinity=False))
def test_clamp_always_lands_in_the_interval(value):
    assert 0.0 <= clamp(value) <= 1.0


@given(previous=unit, observation=unit, alpha=unit)
def test_ewma_stays_between_previous_and_observation(previous, observation, alpha):
    result = ewma(previous, observation, alpha)
    low, high = sorted((previous, observation))
    assert low - 1e-12 <= result <= high + 1e-12


@given(weights=st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=10))
def test_normalized_weights_sum_to_one_and_preserve_order(weights):
    normalized = normalize_weights(weights)
    assert abs(sum(normalized) - 1.0) < 1e-9
    # IEEE division by the same positive total is monotone, but two nearly
    # equal weights may round to the same normalized value — so order is
    # preserved in the non-strict sense only.
    for i in range(len(weights)):
        for j in range(len(weights)):
            if weights[i] < weights[j]:
                assert normalized[i] <= normalized[j]


@given(
    values=st.dictionaries(
        st.text(min_size=1, max_size=3),
        st.floats(min_value=0.0, max_value=100.0),
        min_size=1,
        max_size=10,
    )
)
def test_normalize_distribution_is_a_probability_vector(values):
    distribution = normalize_distribution(values)
    assert abs(sum(distribution.values()) - 1.0) < 1e-9
    assert all(value >= 0 for value in distribution.values())

"""Property-based tests for the coupling dynamics and privacy policies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coupling import STATE_VARIABLES, CouplingDynamics, CouplingState
from repro.privacy.policy import (
    AccessRequest,
    Audience,
    Obligation,
    PolicyRule,
    PrivacyPolicy,
)
from repro.privacy.purposes import Operation, Purpose

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)

states = st.builds(
    CouplingState,
    trust=unit,
    satisfaction=unit,
    reputation_efficiency=unit,
    disclosure=unit,
    honest_contribution=unit,
    privacy_satisfaction=unit,
)

dynamics_instances = st.builds(
    CouplingDynamics,
    sharing_level=unit,
    mechanism_power=unit,
    policy_respect=unit,
    trustworthy_fraction=unit,
    damping=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
)


@given(dynamics=dynamics_instances, state=states)
@settings(max_examples=80)
def test_step_preserves_bounds(dynamics, state):
    next_state = dynamics.step(state)
    for name in STATE_VARIABLES:
        assert 0.0 <= getattr(next_state, name) <= 1.0


@given(dynamics=dynamics_instances, state=states)
@settings(max_examples=40, deadline=None)
def test_dynamics_converge_from_any_start(dynamics, state):
    # 1000 steps: with damping near the 0.05 floor and a high-gain parameter
    # corner the contraction rate is ~0.98/step, so 400 steps is not enough
    # to push the per-step residual below the bound.
    trajectory = dynamics.run(state, steps=1000, tolerance=1e-7)
    assert trajectory[-1].distance(trajectory[-2]) < 1e-5


@given(state=states, low=unit, high=unit)
@settings(max_examples=60)
def test_more_sharing_never_reduces_reputation_target(state, low, high):
    low_level, high_level = sorted((low, high))
    low_dynamics = CouplingDynamics(sharing_level=low_level)
    high_dynamics = CouplingDynamics(sharing_level=high_level)
    assert high_dynamics.step(state).disclosure >= low_dynamics.step(state).disclosure - 1e-9


# -- privacy policies ---------------------------------------------------------

rules = st.builds(
    PolicyRule,
    audience=st.sampled_from(list(Audience)),
    operations=st.sets(st.sampled_from(list(Operation)), min_size=1),
    purposes=st.sets(st.sampled_from(list(Purpose)), min_size=1),
    minimum_trust=unit,
    retention_time=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    obligations=st.sets(st.sampled_from(list(Obligation))),
)

requests = st.builds(
    AccessRequest,
    requester=st.just("bob"),
    owner=st.just("alice"),
    data_id=st.just("alice/data"),
    operation=st.sampled_from(list(Operation)),
    purpose=st.sampled_from(list(Purpose)),
    requester_trust=unit,
    is_friend=st.booleans(),
    same_community=st.booleans(),
    accepted_obligations=st.frozensets(st.sampled_from(list(Obligation))),
)


@given(rule=rules, request=requests)
@settings(max_examples=100)
def test_denials_always_carry_reasons_and_permits_never_do(rule, request):
    decision = rule.evaluate(request)
    if decision.permitted:
        assert decision.reasons == ()
        assert decision.obligations == frozenset(rule.obligations)
    else:
        assert decision.reasons


@given(rule=rules, request=requests)
@settings(max_examples=100)
def test_accepting_all_obligations_never_hurts(rule, request):
    baseline = rule.evaluate(request)
    generous = AccessRequest(
        requester=request.requester,
        owner=request.owner,
        data_id=request.data_id,
        operation=request.operation,
        purpose=request.purpose,
        requester_trust=request.requester_trust,
        is_friend=request.is_friend,
        same_community=request.same_community,
        accepted_obligations=frozenset(Obligation),
    )
    assert rule.evaluate(generous).permitted or not baseline.permitted


@given(rule=rules, request=requests, boost=unit)
@settings(max_examples=100)
def test_more_trust_never_turns_a_permit_into_a_denial(rule, request, boost):
    baseline = rule.evaluate(request)
    trusted = AccessRequest(
        requester=request.requester,
        owner=request.owner,
        data_id=request.data_id,
        operation=request.operation,
        purpose=request.purpose,
        requester_trust=min(1.0, request.requester_trust + boost),
        is_friend=request.is_friend,
        same_community=request.same_community,
        accepted_obligations=request.accepted_obligations,
    )
    if baseline.permitted:
        assert rule.evaluate(trusted).permitted


@given(rule=rules)
@settings(max_examples=60)
def test_policy_strictness_always_in_unit_interval(rule):
    policy = PrivacyPolicy(owner="alice", default_rule=rule)
    assert 0.0 <= policy.strictness() <= 1.0

"""Property tests: incremental refresh equals cold-start refresh, byte for byte.

The acceleration contract of the incremental layer: for any feedback
history — interleaved refreshes, anonymous reports, eviction, clears — and
on either compute backend, a mechanism that folds evidence incrementally
publishes *exactly* the scores a cold rescan publishes.  The end-to-end
variant replays whole attack scenarios (including whitewashing and churn,
which retire peer identities mid-run) with the acceleration flags on and
off and requires byte-identical robustness records.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import accel
from repro.core.backend import available_backends
from repro.experiments import robustness
from repro.reputation.average import SimpleAverageReputation
from repro.reputation.beta import BetaReputation
from repro.reputation.eigentrust import EigenTrust
from repro.reputation.powertrust import PowerTrust
from repro.scenarios.runner import clear_run_cache
from repro.scenarios.setup import clear_setup_cache
from repro.simulation.transaction import Feedback
from repro.socialnet.generators import clear_network_cache

SUBJECTS = ["s0", "s1", "s2", "s3", "s4"]
RATERS = ["s0", "s1", "r0", "r1", "r2"]

FACTORIES = [
    lambda backend, cap: SimpleAverageReputation(
        backend=backend, max_evidence_per_subject=cap
    ),
    lambda backend, cap: BetaReputation(
        forgetting=1.0, backend=backend, max_evidence_per_subject=cap
    ),
    lambda backend, cap: BetaReputation(
        forgetting=0.9, backend=backend, max_evidence_per_subject=cap
    ),
    lambda backend, cap: EigenTrust(
        pretrusted=["s0", "s1"], backend=backend, max_evidence_per_subject=cap
    ),
    lambda backend, cap: PowerTrust(
        n_power_nodes=2, backend=backend, max_evidence_per_subject=cap
    ),
]


@st.composite
def feedback_schedules(draw):
    """A feedback sequence split into batches, refreshed between batches."""
    size = draw(st.integers(min_value=1, max_value=50))
    reports = []
    for index in range(size):
        reports.append(
            Feedback(
                transaction_id=index,
                time=float(draw(st.integers(min_value=0, max_value=25))),
                subject=draw(st.sampled_from(SUBJECTS)),
                rating=draw(st.sampled_from([0.0, 1.0])),
                rater=draw(st.one_of(st.none(), st.sampled_from(RATERS))),
            )
        )
    n_cuts = draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(draw(st.sampled_from(range(size + 1))) for _ in range(n_cuts))
    batches = []
    previous = 0
    for cut in [*cuts, size]:
        batches.append(reports[previous:cut])
        previous = cut
    return batches


@given(
    batches=feedback_schedules(),
    mechanism_index=st.integers(0, len(FACTORIES) - 1),
    cap=st.sampled_from([None, 3]),
)
@settings(max_examples=60, deadline=None)
def test_incremental_refresh_matches_cold_refresh(batches, mechanism_index, cap):
    """After every batch, incremental and cold publish identical scores."""
    factory = FACTORIES[mechanism_index]
    for backend in available_backends():
        with accel.override(incremental_refresh=True, disable_all=False):
            incremental = factory(backend, cap)
        with accel.override(incremental_refresh=False):
            cold = factory(backend, cap)
        for batch in batches:
            for feedback in batch:
                with accel.override(incremental_refresh=True, disable_all=False):
                    incremental.record_feedback(feedback)
                with accel.override(incremental_refresh=False):
                    cold.record_feedback(feedback)
            with accel.override(incremental_refresh=True, disable_all=False):
                published_incremental = incremental.refresh()
            with accel.override(incremental_refresh=False):
                published_cold = cold.refresh()
            assert list(published_incremental.items()) == list(published_cold.items())


@given(batches=feedback_schedules(), mechanism_index=st.integers(0, len(FACTORIES) - 1))
@settings(max_examples=25, deadline=None)
def test_refresh_survives_clear_and_reset(batches, mechanism_index):
    """A cleared store cold-starts the incremental state, not stale sums.

    The reference replays the post-reset evidence on the *same refresh
    schedule*: PowerTrust's power-node selection intentionally warm-starts
    from the previous refresh, so refresh cadence is part of a mechanism's
    semantics — what must match is a reset system versus a fresh one.
    """
    factory = FACTORIES[mechanism_index]
    with accel.override(incremental_refresh=True, disable_all=False):
        system = factory("python", None)
        reference = factory("python", None)
        for batch_index, batch in enumerate(batches):
            for feedback in batch:
                system.record_feedback(feedback)
            system.refresh()
            if batch_index == 0:
                system.reset()
                system.refresh()
        # Replay only the post-reset evidence into a fresh system, with the
        # same per-batch refresh cadence the reset system experienced.
        for batch in batches[1:]:
            for feedback in batch:
                reference.record_feedback(feedback)
            reference.refresh()
        assert list(system.refresh().items()) == list(reference.refresh().items())


def _matrix_records(**kwargs):
    clear_network_cache()
    clear_setup_cache()
    clear_run_cache()
    result = robustness.run(**kwargs)
    return json.dumps(robustness.summarize(result), sort_keys=True)


@pytest.mark.parametrize("scenario", ["whitewash-wave", "collusion-under-churn", "sybil-burst"])
def test_scenario_records_identical_across_acceleration_flags(scenario):
    """Whole-pipeline byte-identity on the identity-churning scenarios.

    Whitewashing and churn retire peer identities mid-run — the hard case
    for incremental state (participant layouts change, matrices rebuild).
    """
    kwargs = dict(
        scenarios=(scenario,),
        mechanisms=("average", "beta", "eigentrust", "powertrust"),
        n_users=18,
        rounds=10,
        seed=11,
    )
    accelerated = _matrix_records(**kwargs)
    with accel.override(disable_all=True):
        cold = _matrix_records(**kwargs)
    assert accelerated == cold


def test_scenario_records_identical_with_run_cache():
    """The run cache re-evaluates traces without changing a byte, and
    threshold-only variations reuse the simulation."""
    kwargs = dict(
        scenarios=("collusion-ring",),
        mechanisms=("eigentrust",),
        n_users=16,
        rounds=8,
        seed=5,
    )
    fresh = _matrix_records(**kwargs)
    with accel.override(run_cache=True, disable_all=False):
        cached_first = _matrix_records(**kwargs)
        # Second pass hits the per-process run cache (no clears in between).
        result = robustness.run(**kwargs)
        cached_second = json.dumps(robustness.summarize(result), sort_keys=True)
        varied = robustness.run(detect_threshold=0.2, **kwargs)
        varied_summary = robustness.summarize(varied)
    assert fresh == cached_first == cached_second
    assert "n_outcomes" in varied_summary

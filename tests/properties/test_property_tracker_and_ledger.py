"""Property-based tests for the satisfaction tracker and disclosure ledger."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.disclosure import DisclosureLedger, DisclosureRecord
from repro.privacy.metrics import exposure_level, policy_respect_rate
from repro.privacy.purposes import Purpose
from repro.satisfaction.aggregate import global_satisfaction, summarize
from repro.satisfaction.tracker import SatisfactionTracker

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


@given(observations=st.lists(unit, min_size=1, max_size=50), alpha=st.floats(0.01, 1.0))
def test_tracker_satisfaction_stays_within_observed_range(observations, alpha):
    tracker = SatisfactionTracker(alpha=alpha)
    for value in observations:
        tracker.observe("user", value)
    satisfaction = tracker.satisfaction("user")
    assert min(observations) - 1e-9 <= satisfaction <= max(observations) + 1e-9


@given(observations=st.lists(unit, min_size=1, max_size=50))
def test_tracker_windowed_mean_matches_manual_mean(observations):
    tracker = SatisfactionTracker(window=1000)
    for value in observations:
        tracker.observe("user", value)
    expected = sum(observations) / len(observations)
    assert abs(tracker.windowed_satisfaction("user") - expected) < 1e-9


@given(observations=st.lists(st.tuples(unit, st.booleans()), min_size=1, max_size=50))
def test_allocation_satisfaction_only_reflects_imposed_observations(observations):
    tracker = SatisfactionTracker(alpha=0.5)
    imposed_values = [value for value, imposed in observations if imposed]
    for value, imposed in observations:
        tracker.observe("user", value, imposed=imposed)
    allocation = tracker.allocation_satisfaction("user")
    if imposed_values:
        assert min(imposed_values) - 1e-9 <= allocation <= max(imposed_values) + 1e-9
    else:
        assert allocation == tracker.satisfaction("user")


@given(values=st.dictionaries(st.text(min_size=1, max_size=5), unit, min_size=1, max_size=20))
def test_global_satisfaction_bounded_by_extremes(values):
    value = global_satisfaction(values)
    assert min(values.values()) - 1e-9 <= value <= max(values.values()) + 1e-9
    summary = summarize(values)
    assert summary.minimum - 1e-9 <= summary.mean <= summary.maximum + 1e-9


@st.composite
def disclosure_records(draw):
    return DisclosureRecord(
        time=draw(st.integers(min_value=0, max_value=100)),
        owner=draw(st.sampled_from(["alice", "bob", "carol"])),
        recipient=draw(st.sampled_from(["x", "y"])),
        data_id="d",
        sensitivity=draw(unit),
        purpose=draw(st.sampled_from(list(Purpose))),
        policy_compliant=draw(st.booleans()),
        retention_time=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=50))),
    )


@given(records=st.lists(disclosure_records(), max_size=40))
@settings(max_examples=60)
def test_ledger_invariants(records):
    ledger = DisclosureLedger()
    for record in records:
        ledger.record(record)
    assert 0.0 <= ledger.compliance_rate() <= 1.0
    for owner in ("alice", "bob", "carol"):
        assert ledger.exposure(owner) >= 0.0
        assert 0.0 <= exposure_level(ledger, owner) <= 1.0
        assert 0.0 <= policy_respect_rate(ledger, owner) <= 1.0
    # Partitioning by owner loses nothing.
    assert sum(len(ledger.by_owner(owner)) for owner in ("alice", "bob", "carol")) == len(
        ledger
    )
    # Active and expired records partition the ledger at any time.
    for now in (0, 50, 200):
        assert len(ledger.active_records(now)) + len(ledger.expired_records(now)) == len(ledger)


@given(records=st.lists(disclosure_records(), max_size=40), now=st.integers(0, 200))
@settings(max_examples=60)
def test_exposure_with_retention_never_exceeds_total_exposure(records, now):
    ledger = DisclosureLedger()
    for record in records:
        ledger.record(record)
    for owner in ("alice", "bob", "carol"):
        assert ledger.exposure(owner, now=now) <= ledger.exposure(owner) + 1e-9

"""Property tests: the pure-Python and vectorized backends agree.

The contract the whole PR rests on: for any feedback history, any adversary
mix and any coupling parameterization, the vectorized kernels compute the
same numbers as the reference Python code — scores within 1e-9 before
quantization, published (quantized) scores and simulated trajectories
exactly equal.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coupling import CouplingDynamics, CouplingState
from repro.reputation.average import SimpleAverageReputation
from repro.reputation.beta import BetaReputation
from repro.reputation.eigentrust import EigenTrust
from repro.reputation.powertrust import PowerTrust
from repro.simulation.engine import InteractionSimulator, SimulationConfig
from repro.simulation.transaction import Feedback
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network

pytest.importorskip("numpy")

SUBJECTS = ["s0", "s1", "s2", "s3", "s4"]
RATERS = ["s0", "s1", "r0", "r1", "r2"]


@st.composite
def feedback_batches(draw):
    size = draw(st.integers(min_value=1, max_value=60))
    batch = []
    for index in range(size):
        batch.append(
            Feedback(
                transaction_id=index,
                time=draw(st.integers(min_value=0, max_value=30)),
                subject=draw(st.sampled_from(SUBJECTS)),
                rating=draw(st.sampled_from([0.0, 1.0])),
                rater=draw(st.one_of(st.none(), st.sampled_from(RATERS))),
            )
        )
    return batch


def _factories():
    return [
        lambda backend: SimpleAverageReputation(backend=backend),
        lambda backend: BetaReputation(forgetting=0.9, backend=backend),
        lambda backend: EigenTrust(pretrusted=["s0", "s1"], backend=backend),
        lambda backend: PowerTrust(n_power_nodes=2, backend=backend),
    ]


@given(batch=feedback_batches(), mechanism_index=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_scores_within_1e9(batch, mechanism_index):
    factory = _factories()[mechanism_index]
    systems = {}
    for backend in ("python", "vectorized"):
        system = factory(backend)
        for feedback in batch:
            system.record_feedback(feedback)
        systems[backend] = system
    raw_python = systems["python"].compute_scores()
    raw_vectorized = systems["vectorized"].compute_scores()
    assert set(raw_python) == set(raw_vectorized)
    for peer, value in raw_python.items():
        assert raw_vectorized[peer] == pytest.approx(value, abs=1e-9)
    # Published (quantized) scores are exactly equal, keys in the same order.
    assert list(systems["python"].refresh().items()) == list(
        systems["vectorized"].refresh().items()
    )


@given(
    sharing=st.floats(0.0, 1.0),
    power=st.floats(0.0, 1.0),
    respect=st.floats(0.0, 1.0),
    trustworthy=st.floats(0.0, 1.0),
    damping=st.floats(0.05, 1.0),
    trust0=st.floats(0.0, 1.0),
    disclosure0=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_coupling_trajectories_identical_across_backends(
    sharing, power, respect, trustworthy, damping, trust0, disclosure0
):
    initial = CouplingState(trust=trust0, disclosure=disclosure0)
    paths = {}
    for backend in ("python", "vectorized"):
        dynamics = CouplingDynamics(
            sharing_level=sharing,
            mechanism_power=power,
            policy_respect=respect,
            trustworthy_fraction=trustworthy,
            damping=damping,
            backend=backend,
        )
        paths[backend] = dynamics.run(initial, steps=80)
    assert len(paths["python"]) == len(paths["vectorized"])
    for a, b in zip(paths["python"], paths["vectorized"], strict=True):
        assert a.as_dict() == b.as_dict()


@given(
    seed=st.integers(0, 2**16),
    malicious=st.floats(0.0, 0.6),
    whitewashers=st.floats(0.0, 1.0),
    collusion=st.floats(0.0, 1.0),
    mechanism_index=st.integers(0, 3),
)
@settings(max_examples=12, deadline=None)
def test_simulated_trajectories_identical_across_backends(
    seed, malicious, whitewashers, collusion, mechanism_index
):
    """Same seed, same adversary mix => byte-identical runs on both backends."""

    def run(backend):
        graph = generate_social_network(
            SocialNetworkSpec(n_users=16, malicious_fraction=malicious, seed=seed)
        )
        reputation = _factories()[mechanism_index](backend)
        simulator = InteractionSimulator(
            graph,
            SimulationConfig(
                rounds=5,
                seed=seed,
                whitewasher_fraction=whitewashers,
                collusion_fraction=collusion,
                backend=backend,
            ),
            reputation=reputation,
        )
        result = simulator.run()
        return (
            [
                (t.consumer, t.provider, t.outcome.value, t.quality)
                for t in result.transactions
            ],
            [(f.subject, f.rater, f.rating) for f in result.disclosed_feedbacks],
            reputation.refresh(),
        )

    assert run("python") == run("vectorized")

"""The write-ahead evidence log: format, damage policy, compaction."""

import json
import warnings

import pytest

import repro.faults as faults
from repro.errors import ConfigurationError, IntegrityError
from repro.serving.wal import (
    TornTailWarning,
    WriteAheadLog,
    config_digest,
    feedback_from_wire,
    feedback_to_wire,
    verify_wal,
)
from repro.simulation.transaction import Feedback

CONFIG = config_digest({"mechanism": "beta", "refresh_every": 4})
OTHER_CONFIG = config_digest({"mechanism": "average", "refresh_every": 4})


def event(index, subject="alice", rating=1.0):
    return Feedback(
        transaction_id=index,
        time=index,
        subject=subject,
        rating=rating,
        rater="client",
    )


def batches(*sizes):
    """Contiguous batches of the given sizes, starting at seq 0."""
    seq = 0
    out = []
    for size in sizes:
        out.append((seq, [event(seq + i) for i in range(size)]))
        seq += size
    return out


def fresh_wal(path, *sizes, keys=None):
    wal, entries, truncated = WriteAheadLog.open(str(path), config_sha256=CONFIG)
    assert entries == [] and truncated == 0
    for index, (seq, events) in enumerate(batches(*sizes)):
        key = None if keys is None else keys[index]
        wal.append(events, seq=seq, key=key)
    return wal


class TestWireFormat:
    def test_feedback_roundtrip(self):
        original = Feedback(
            transaction_id=7, time=3, subject="bob", rating=0.25, rater="c", truthful=False
        )
        assert feedback_from_wire(feedback_to_wire(original)) == original

    def test_missing_field_is_integrity_error(self):
        wire = feedback_to_wire(event(0))
        del wire["subject"]
        with pytest.raises(IntegrityError, match="malformed WAL feedback"):
            feedback_from_wire(wire)

    def test_config_digest_is_order_insensitive(self):
        a = config_digest({"mechanism": "beta", "refresh_every": 4})
        b = config_digest({"refresh_every": 4, "mechanism": "beta"})
        assert a == b
        assert a != OTHER_CONFIG


class TestRoundTrip:
    def test_append_then_reopen_replays_in_order(self, tmp_path):
        path = tmp_path / "serve.wal"
        wal = fresh_wal(path, 2, 3, 1, keys=["a", None, "c"])
        assert wal.entry_count == 3
        assert wal.event_count == 6
        wal.close()

        reopened, entries, truncated = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        assert truncated == 0
        assert [(entry.seq, entry.key, len(entry.events)) for entry in entries] == [
            (0, "a", 2),
            (2, None, 3),
            (5, "c", 1),
        ]
        assert entries[0].events[0] == event(0)
        assert entries[-1].end == 6
        assert reopened.entry_count == 3
        reopened.close()

    def test_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "new.wal"
        wal, entries, truncated = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        assert (entries, truncated) == ([], 0)
        header = json.loads(path.read_bytes().split(b"\n")[0])
        assert header == {
            "config_sha256": CONFIG,
            "format": "repro-serve-wal",
            "version": 1,
        }
        wal.close()

    def test_torn_header_is_recreated(self, tmp_path):
        path = tmp_path / "torn-header.wal"
        path.write_bytes(b'{"config_sha256": "abc')  # crash mid-header, no newline
        wal, entries, truncated = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        assert (entries, truncated) == ([], 0)
        assert verify_wal(str(path)) == (0, 0)
        wal.close()

    def test_config_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "serve.wal"
        fresh_wal(path, 2).close()
        with pytest.raises(ConfigurationError, match="differently-configured"):
            WriteAheadLog.open(str(path), config_sha256=OTHER_CONFIG)


class TestDamagePolicy:
    def test_torn_tail_truncated_with_structured_warning(self, tmp_path):
        path = tmp_path / "serve.wal"
        fresh_wal(path, 2, 2).close()
        intact = path.read_bytes()
        torn = intact[:-1].rsplit(b"\n", 1)[0] + b"\n" + b'{"events": [], "ke'
        path.write_bytes(torn)

        with pytest.warns(TornTailWarning) as caught:
            wal, entries, truncated = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        assert truncated == 1
        assert [entry.seq for entry in entries] == [0]
        detail = json.loads(str(caught[0].message))
        assert detail["kept_entries"] == 1
        assert detail["truncated_lines"] == 1
        assert detail["path"] == str(path)
        assert detail["truncated_bytes"] > 0
        # The file itself was repaired: a second open is clean.
        wal.close()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            wal, entries, truncated = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        assert truncated == 0
        assert len(entries) == 1
        wal.close()

    def test_bit_flipped_tail_line_is_truncated(self, tmp_path):
        path = tmp_path / "serve.wal"
        fresh_wal(path, 2, 2).close()
        raw = path.read_bytes()
        # Flip one digest byte inside the last line: checksum must catch it.
        lines = raw[:-1].split(b"\n")
        lines[-1] = lines[-1].replace(b'"sha256": "', b'"sha256": "X', 1)
        path.write_bytes(b"\n".join(lines) + b"\n")

        with pytest.warns(TornTailWarning):
            wal, entries, truncated = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        assert truncated == 1
        assert len(entries) == 1
        wal.close()

    def test_interior_damage_hard_fails(self, tmp_path):
        path = tmp_path / "serve.wal"
        fresh_wal(path, 2, 2, 2).close()
        raw = path.read_bytes()
        lines = raw[:-1].split(b"\n")
        lines[2] = b"garbage"  # second batch, under an acked third
        path.write_bytes(b"\n".join(lines) + b"\n")

        with pytest.raises(IntegrityError, match="damaged interior line"):
            WriteAheadLog.open(str(path), config_sha256=CONFIG)
        with pytest.raises(IntegrityError, match="damaged interior line"):
            verify_wal(str(path))

    def test_sequence_gap_hard_fails(self, tmp_path):
        path = tmp_path / "serve.wal"
        wal, _, _ = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        wal.append([event(0)], seq=0)
        wal.append([event(5)], seq=5)  # a batch went missing
        wal.close()
        with pytest.raises(IntegrityError, match="sequence gap"):
            verify_wal(str(path))

    def test_verify_wal_never_modifies(self, tmp_path):
        path = tmp_path / "serve.wal"
        fresh_wal(path, 2).close()
        damaged = path.read_bytes() + b'{"torn'
        path.write_bytes(damaged)
        assert verify_wal(str(path)) == (1, 1)
        assert path.read_bytes() == damaged

    def test_corrupt_fault_produces_recoverable_torn_tail(self, tmp_path):
        path = tmp_path / "serve.wal"
        plan = faults.FaultPlan(
            rules=(faults.FaultRule(site="wal.append", action="corrupt", match=(("seq", 2),)),)
        )
        wal, _, _ = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        with faults.active(plan):
            wal.append([event(0), event(1)], seq=0)
            wal.append([event(2)], seq=2)  # this line lands corrupted
        wal.close()

        assert verify_wal(str(path)) == (1, 1)
        with pytest.warns(TornTailWarning):
            wal, entries, truncated = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        assert truncated == 1
        assert [entry.seq for entry in entries] == [0]
        wal.close()


class TestCompaction:
    def test_covered_batches_dropped_atomically(self, tmp_path):
        path = tmp_path / "serve.wal"
        wal = fresh_wal(path, 2, 2, 2)
        assert wal.compact(4) == 2
        assert wal.entry_count == 1
        assert wal.event_count == 2
        # Appends keep working on the rewritten handle.
        wal.append([event(6)], seq=6)
        wal.close()
        _, entries, _ = WriteAheadLog.open(str(path), config_sha256=CONFIG)
        assert [entry.seq for entry in entries] == [4, 6]

    def test_straddling_batch_is_kept(self, tmp_path):
        path = tmp_path / "serve.wal"
        wal = fresh_wal(path, 2, 2)
        # upto_seq=3 covers only half the second batch: it must survive.
        assert wal.compact(3) == 1
        assert wal.entry_count == 1
        wal.close()

    def test_compact_keeps_unvouched_lines_verbatim(self, tmp_path):
        path = tmp_path / "serve.wal"
        wal = fresh_wal(path, 2)
        wal.close()
        torn = b'{"not": "a batch"'
        with open(path, "ab") as handle:
            handle.write(torn + b"\n")
        # Reattach without open()'s repair: compact straight off a raw handle.
        reopened = WriteAheadLog(
            str(path), open(path, "ab"), config_sha256=CONFIG, entries=1, events=2
        )
        assert reopened.compact(2) == 1
        reopened.close()
        assert torn in path.read_bytes()

    def test_compact_zero_is_noop(self, tmp_path):
        path = tmp_path / "serve.wal"
        wal = fresh_wal(path, 2, 2)
        before = path.read_bytes()
        assert wal.compact(0) == 0
        wal.close()
        assert path.read_bytes() == before

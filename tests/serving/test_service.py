"""Unit tests for the transport-agnostic :class:`ReputationService` session."""

import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.reputation.base import ScoreView
from repro.serving import (
    IngestReceipt,
    PeerSummary,
    ReputationService,
    ServiceConfig,
    feedback_from_payload,
)
from repro.simulation.transaction import Feedback


def _event(subject, rating, rater=None, time=0, transaction_id=0):
    return Feedback(
        transaction_id=transaction_id,
        time=time,
        subject=subject,
        rating=rating,
        rater=rater,
    )


class TestServiceConfig:
    def test_defaults(self):
        config = ServiceConfig()
        assert config.mechanism == "beta"
        assert config.refresh_every == 64

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown mechanism"):
            ServiceConfig(mechanism="nope")

    def test_refresh_every_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="refresh_every"):
            ServiceConfig(refresh_every=0)

    def test_latency_window_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="latency_window"):
            ServiceConfig(latency_window=0)

    def test_service_rejects_config_plus_overrides(self):
        with pytest.raises(ConfigurationError, match="either a config object"):
            ReputationService(ServiceConfig(), refresh_every=8)

    def test_service_accepts_keyword_overrides(self):
        service = ReputationService(mechanism="average", refresh_every=2)
        assert service.config.mechanism == "average"
        assert service.config.refresh_every == 2


class TestIngestion:
    def test_receipt_counts_and_watermark(self):
        service = ReputationService(refresh_every=4)
        receipt = service.ingest(_event("alice", 1.0))
        assert isinstance(receipt, IngestReceipt)
        assert receipt.accepted == 1
        assert receipt.ingested == 1
        assert receipt.watermark == 0  # below the refresh boundary
        assert not receipt.refreshed
        assert service.pending == 1

    def test_refresh_boundary_publishes(self):
        service = ReputationService(refresh_every=4)
        receipt = service.ingest_many(
            _event("alice", 1.0, time=i, transaction_id=i) for i in range(4)
        )
        assert receipt.refreshed
        assert receipt.watermark == 4
        assert service.pending == 0
        assert service.scores().score_of("alice") > 0.5

    def test_large_batch_crosses_multiple_boundaries(self):
        service = ReputationService(refresh_every=2)
        receipt = service.ingest_many(
            _event("alice", 1.0, time=i, transaction_id=i) for i in range(5)
        )
        assert receipt.ingested == 5
        assert receipt.watermark == 4  # refreshed at 2 and 4, one pending
        assert service.pending == 1
        assert service.health()["refreshes"] == 2

    def test_dict_events_accepted(self):
        service = ReputationService(refresh_every=1)
        receipt = service.ingest({"subject": "bob", "rating": 0.9})
        assert receipt.refreshed
        assert service.scores().score_of("bob") > 0.5

    def test_manual_refresh_flushes_pending(self):
        service = ReputationService(refresh_every=100)
        service.ingest(_event("alice", 1.0))
        assert service.pending == 1
        view = service.refresh()
        assert isinstance(view, ScoreView)
        assert service.pending == 0
        assert service.watermark == 1


class TestQueries:
    @pytest.fixture()
    def service(self):
        service = ReputationService(refresh_every=1)
        service.ingest_many(
            [
                _event("alice", 1.0, time=0, transaction_id=0),
                _event("alice", 1.0, time=1, transaction_id=1),
                _event("bob", 0.2, time=2, transaction_id=2),
            ]
        )
        return service

    def test_scores_returns_score_view_copy(self, service):
        view = service.scores()
        assert isinstance(view, ScoreView)
        view["alice"] = 0.0  # a copy: must not corrupt the published scores
        assert service.scores().score_of("alice") > 0.5

    def test_ranking_and_limit(self, service):
        assert service.ranking() == ["alice", "bob"]
        assert service.ranking(limit=1) == ["alice"]
        assert service.ranking(limit=0) == []

    def test_peer_summary_known(self, service):
        summary = service.peer("alice")
        assert isinstance(summary, PeerSummary)
        assert summary.known
        assert summary.rank == 1
        assert summary.watermark == 3

    def test_peer_summary_unknown(self, service):
        summary = service.peer("mallory")
        assert not summary.known
        assert summary.rank is None
        assert summary.score == service.config.default_score

    def test_health_counters(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["ingested"] == 3
        assert health["watermark"] == 3
        assert health["pending"] == 0
        assert health["known_peers"] == 2
        assert set(health["latency"]) == {"ingest", "query", "refresh", "snapshot"}


class TestEvidenceLog:
    def test_append_only_log_and_slicing(self):
        service = ReputationService(refresh_every=10)
        events = [_event("alice", 1.0, time=i, transaction_id=i) for i in range(5)]
        service.ingest_many(events)
        assert service.evidence_count == 5
        assert service.evidence() == events
        assert service.evidence(start=2, limit=2) == events[2:4]
        assert service.evidence(limit=0) == []


class TestSnapshotRestore:
    def test_round_trip_preserves_counters_and_scores(self, tmp_path):
        service = ReputationService(mechanism="beta", refresh_every=2)
        service.ingest_many(
            _event("alice", 1.0, time=i, transaction_id=i) for i in range(3)
        )
        path = tmp_path / "svc.ckpt"
        vitals = service.snapshot(str(path))
        assert vitals["ingested"] == 3
        assert vitals["watermark"] == 2

        restored = ReputationService.restore(str(path))
        assert restored.config == service.config
        assert restored.watermark == service.watermark
        assert restored.pending == service.pending
        assert restored.evidence() == service.evidence()
        assert restored.scores() == service.scores()

    def test_restore_rejects_wrong_kind(self, tmp_path):
        from repro.simulation.checkpoint import write_checkpoint

        path = tmp_path / "other.ckpt"
        write_checkpoint(str(path), "sweep", {"not": "a service"}, round_index=0)
        with pytest.raises(CheckpointError):
            ReputationService.restore(str(path))


class TestFeedbackFromPayload:
    def test_defaults_fill_sequence(self):
        feedback = feedback_from_payload({"subject": "a", "rating": 0.5}, sequence=7)
        assert feedback.time == 7
        assert feedback.transaction_id == 7
        assert feedback.rater is None

    def test_explicit_fields_pass_through(self):
        feedback = feedback_from_payload(
            {"subject": "a", "rating": 1, "rater": "b", "time": 3, "transaction_id": 9},
            sequence=0,
        )
        assert feedback.rater == "b"
        assert feedback.time == 3
        assert feedback.transaction_id == 9
        assert feedback.rating == 1.0

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"rating": 0.5}, "subject"),
            ({"subject": "", "rating": 0.5}, "subject"),
            ({"subject": "a"}, "rating"),
            ({"subject": "a", "rating": True}, "rating"),
            ({"subject": "a", "rating": "high"}, "rating"),
            ({"subject": "a", "rating": 0.5, "rater": 3}, "rater"),
            ({"subject": "a", "rating": 0.5, "time": "now"}, "time"),
            ({"subject": "a", "rating": 0.5, "transaction_id": 1.5}, "transaction_id"),
            ({"subject": "a", "rating": 0.5, "typo_field": 1}, "unknown feedback fields"),
        ],
    )
    def test_invalid_payloads_rejected(self, payload, match):
        with pytest.raises(ConfigurationError, match=match):
            feedback_from_payload(payload, sequence=0)

"""Route semantics of the stdlib HTTP adapter (and the optional ASGI one)."""

import http.client
import json
import threading

import pytest

import repro.faults as faults
from repro.serving import ReputationService, create_http_server


@pytest.fixture()
def service():
    return ReputationService(refresh_every=2)


@pytest.fixture()
def server(service):
    server = create_http_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def request(server, method, path, body=None, headers=None):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        sent = {"Content-Type": "application/json"} if payload else {}
        sent.update(headers or {})
        connection.request(method, path, body=payload, headers=sent)
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw), raw
    finally:
        connection.close()


def request_full(server, method, path, body=None, headers=None):
    """Like :func:`request` but also returns the response headers."""
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        sent = {"Content-Type": "application/json"} if payload else {}
        sent.update(headers or {})
        connection.request(method, path, body=payload, headers=sent)
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw), dict(response.getheaders())
    finally:
        connection.close()


EVENTS = [
    {"subject": "alice", "rating": 1.0, "time": 0, "transaction_id": 0},
    {"subject": "alice", "rating": 1.0, "time": 1, "transaction_id": 1},
    {"subject": "bob", "rating": 0.2, "time": 2, "transaction_id": 2},
    {"subject": "bob", "rating": 0.1, "time": 3, "transaction_id": 3},
]


class TestFeedbackRoute:
    def test_single_object(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", EVENTS[0])
        assert status == 200
        assert body == {
            "accepted": 1,
            "duplicate": False,
            "ingested": 1,
            "refreshed": False,
            "seq": 0,
            "watermark": 0,
        }

    def test_batch_envelope(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", {"events": EVENTS})
        assert status == 200
        assert body["accepted"] == 4
        assert body["refreshed"] is True
        assert body["watermark"] == 4

    def test_bare_list(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", EVENTS[:2])
        assert status == 200
        assert body["accepted"] == 2

    def test_invalid_event_is_400(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", {"rating": 0.5})
        assert status == 400
        assert "subject" in body["error"]

    def test_non_list_events_is_400(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", {"events": "nope"})
        assert status == 400
        assert "'events' must be a list" in body["error"]

    def test_invalid_json_is_400(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/feedback",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()


class TestScoresRoute:
    def test_scores_after_refresh(self, server):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        status, body, _ = request(server, "GET", "/v1/scores")
        assert status == 200
        assert body["watermark"] == 4
        assert body["pending"] == 0
        assert body["ranking"][0] == "alice"
        assert set(body["scores"]) == {"alice", "bob"}

    def test_limit_truncates(self, server):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        status, body, _ = request(server, "GET", "/v1/scores?limit=1")
        assert status == 200
        assert body["ranking"] == ["alice"]
        assert list(body["scores"]) == ["alice"]

    def test_bad_limit_is_400(self, server):
        status, body, _ = request(server, "GET", "/v1/scores?limit=abc")
        assert status == 400
        assert "limit" in body["error"]


class TestPeersRoute:
    def test_known_peer(self, server):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        status, body, _ = request(server, "GET", "/v1/peers/alice")
        assert status == 200
        assert body["peer_id"] == "alice"
        assert body["known"] is True
        assert body["rank"] == 1

    def test_unknown_peer_is_404_with_default_score(self, server, service):
        status, body, _ = request(server, "GET", "/v1/peers/mallory")
        assert status == 404
        assert body["known"] is False
        assert body["score"] == service.config.default_score

    def test_nested_path_is_404(self, server):
        status, body, _ = request(server, "GET", "/v1/peers/a/b")
        assert status == 404
        assert "no such route" in body["error"]


class TestSnapshotRoute:
    def test_snapshot_to_posted_path(self, server, service, tmp_path):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        path = tmp_path / "svc.ckpt"
        status, body, _ = request(server, "POST", "/v1/snapshot", {"path": str(path)})
        assert status == 200
        assert body["ingested"] == 4
        assert path.exists()
        restored = ReputationService.restore(str(path))
        assert restored.scores() == service.scores()

    def test_snapshot_without_path_is_400(self, server):
        status, body, _ = request(server, "POST", "/v1/snapshot")
        assert status == 400
        assert "no snapshot path" in body["error"]

    def test_server_default_snapshot_path(self, service, tmp_path):
        path = tmp_path / "default.ckpt"
        server = create_http_server(service, port=0, snapshot_path=str(path))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _, _ = request(server, "POST", "/v1/snapshot")
            assert status == 200
            assert path.exists()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestHealthAndRouting:
    def test_health(self, server):
        status, body, _ = request(server, "GET", "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["mechanism"] == "beta"
        assert body["refresh_every"] == 2

    def test_unknown_routes_are_404(self, server):
        for method, path in [("GET", "/v2/scores"), ("POST", "/v1/scores")]:
            status, body, _ = request(server, method, path)
            assert status == 404
            assert "no such route" in body["error"]


class TestByteDeterminism:
    def test_two_servers_same_stream_answer_identically(self):
        raws = []
        for _ in range(2):
            service = ReputationService(refresh_every=2)
            server = create_http_server(service, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                request(server, "POST", "/v1/feedback", {"events": EVENTS})
                _, _, raw_scores = request(server, "GET", "/v1/scores")
                _, _, raw_peer = request(server, "GET", "/v1/peers/alice")
                raws.append((raw_scores, raw_peer))
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
        assert raws[0] == raws[1]


class TestEvidenceRoute:
    def test_slice(self, server):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        status, body, _ = request(server, "GET", "/v1/evidence?start=1&limit=2")
        assert status == 200
        assert body["total"] == 4
        assert body["start"] == 1
        assert body["count"] == 2
        assert [event["transaction_id"] for event in body["events"]] == [1, 2]

    def test_full_log(self, server):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        status, body, _ = request(server, "GET", "/v1/evidence")
        assert status == 200
        assert body["count"] == 4
        assert body["events"][0]["subject"] == "alice"

    def test_bad_start_is_400(self, server):
        status, body, _ = request(server, "GET", "/v1/evidence?start=-1")
        assert status == 400
        assert "start" in body["error"]


class TestMalformedPayloads:
    def test_non_dict_event_is_400(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", {"events": [EVENTS[0], 42]})
        assert status == 400
        assert body == {"error": "feedback event #1 must be a JSON object", "status": 400}

    def test_string_body_is_400(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", "nope")
        assert status == 400
        assert "must be an object or a list" in body["error"]

    def test_bad_content_length_is_400(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/feedback")
            connection.putheader("Content-Length", "nope")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert "Content-Length" in json.loads(response.read())["error"]
        finally:
            connection.close()


class TestIdempotency:
    def test_duplicate_key_returns_original_receipt(self, server):
        headers = {"Idempotency-Key": "batch-0"}
        status, first, _ = request(server, "POST", "/v1/feedback", {"events": EVENTS}, headers)
        assert status == 200
        assert first["duplicate"] is False
        status, second, _ = request(server, "POST", "/v1/feedback", {"events": EVENTS}, headers)
        assert status == 200
        assert second["duplicate"] is True
        assert second["accepted"] == first["accepted"]
        assert second["seq"] == first["seq"]
        _, health, _ = request(server, "GET", "/v1/health")
        assert health["ingested"] == 4

    def test_distinct_keys_both_ingest(self, server):
        request(server, "POST", "/v1/feedback", EVENTS[:2], {"Idempotency-Key": "a"})
        request(server, "POST", "/v1/feedback", EVENTS[2:], {"Idempotency-Key": "b"})
        _, health, _ = request(server, "GET", "/v1/health")
        assert health["ingested"] == 4


class TestOverloadAndReadOnly:
    def test_forced_shed_is_429_with_retry_after(self, server, service):
        plan = faults.FaultPlan(
            rules=(faults.FaultRule(site="http.admit", action="degrade", times=1),)
        )
        with faults.active(plan):
            status, body, headers = request_full(server, "POST", "/v1/feedback", EVENTS[0])
        assert status == 429
        assert body["status"] == 429
        assert body["retry_after"] == service.config.retry_after
        assert "Retry-After" in headers
        assert service.admission.shed_total == 1
        # The shed request was never ingested.
        status, after, _ = request(server, "POST", "/v1/feedback", EVENTS[0])
        assert status == 200
        assert after["ingested"] == 1

    def test_rate_limit_is_429(self):
        service = ReputationService(refresh_every=2, client_rate=0.001, client_burst=1)
        server = create_http_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            headers = {"X-Client-Id": "greedy"}
            status, _, _ = request(server, "POST", "/v1/feedback", EVENTS[0], headers)
            assert status == 200
            status, body, _ = request(server, "POST", "/v1/feedback", EVENTS[1], headers)
            assert status == 429
            assert "rate limit" in body["error"]
            assert service.rate_limiter.limited_total == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_read_only_posts_are_503_reads_answer(self, server, service):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        service.enter_read_only("operator drill")
        status, body, headers = request_full(server, "POST", "/v1/feedback", EVENTS[0])
        assert status == 503
        assert body["status"] == 503
        assert "Retry-After" in headers
        status, scores, _ = request(server, "GET", "/v1/scores")
        assert status == 200
        assert scores["watermark"] == 4
        _, health, _ = request(server, "GET", "/v1/health")
        assert health["status"] == "read_only"
        assert health["read_only_reason"] == "operator drill"
        service.resume_writes()
        status, _, _ = request(server, "POST", "/v1/feedback", EVENTS[0])
        assert status == 200


class TestAsgiAdapter:
    def test_missing_fastapi_raises_pointed_error(self, service):
        try:
            import fastapi  # noqa: F401
        except ImportError:
            from repro.errors import ConfigurationError
            from repro.serving import create_asgi_app

            with pytest.raises(ConfigurationError, match="fastapi"):
                create_asgi_app(service)
        else:  # pragma: no cover - container ships without fastapi
            pytest.skip("fastapi installed; the missing-dependency path is untestable")


class TestErrorBodyParity:
    """Both adapters build error bodies through one shared mapping.

    The unit tests below pin the shared builders' exact output; the
    integration test (skipped when fastapi is absent) replays the same bad
    requests through both adapters and compares raw bodies.
    """

    def test_error_response_shapes(self):
        from repro.errors import ConfigurationError, OverloadError, ReadOnlyError
        from repro.serving.http import _error_response

        status, body, headers = _error_response(ConfigurationError("bad input"))
        assert (status, body, headers) == (400, {"error": "bad input", "status": 400}, {})

        status, body, headers = _error_response(OverloadError("full", retry_after=0.4))
        assert status == 429
        assert body == {"error": "full", "retry_after": 0.4, "status": 429}
        assert headers == {"Retry-After": "1"}

        status, body, headers = _error_response(ReadOnlyError("wal gone", retry_after=2.0))
        assert status == 503
        assert body == {"error": "wal gone", "retry_after": 2.0, "status": 503}
        assert headers == {"Retry-After": "2"}

    def test_decode_body_rejects_bad_json_identically(self):
        from repro.errors import ConfigurationError
        from repro.serving.http import _decode_body

        with pytest.raises(ConfigurationError, match="not valid JSON"):
            _decode_body(b"{not json")

    def test_adapters_agree_on_error_bodies(self, server):
        fastapi = pytest.importorskip("fastapi")  # noqa: F841
        testclient = pytest.importorskip("fastapi.testclient")
        from repro.serving import create_asgi_app

        asgi_service = ReputationService(refresh_every=2)
        client = testclient.TestClient(create_asgi_app(asgi_service))

        bad_requests = [
            ("POST", "/v1/feedback", b"{not json"),
            ("POST", "/v1/feedback", json.dumps({"events": "nope"}).encode()),
            ("POST", "/v1/feedback", json.dumps({"events": [42]}).encode()),
            ("POST", "/v1/snapshot", b""),
            ("GET", "/v1/scores?limit=abc", None),
            ("GET", "/v1/evidence?start=-1", None),
        ]
        for method, path, raw in bad_requests:
            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=10)
            try:
                connection.request(method, path, body=raw)
                response = connection.getresponse()
                stdlib_status, stdlib_body = response.status, json.loads(response.read())
            finally:
                connection.close()
            asgi = client.request(method, path, content=raw)
            assert asgi.status_code == stdlib_status, path
            assert asgi.json() == stdlib_body, path

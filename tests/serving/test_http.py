"""Route semantics of the stdlib HTTP adapter (and the optional ASGI one)."""

import http.client
import json
import threading

import pytest

from repro.serving import ReputationService, create_http_server


@pytest.fixture()
def service():
    return ReputationService(refresh_every=2)


@pytest.fixture()
def server(service):
    server = create_http_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def request(server, method, path, body=None):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw), raw
    finally:
        connection.close()


EVENTS = [
    {"subject": "alice", "rating": 1.0, "time": 0, "transaction_id": 0},
    {"subject": "alice", "rating": 1.0, "time": 1, "transaction_id": 1},
    {"subject": "bob", "rating": 0.2, "time": 2, "transaction_id": 2},
    {"subject": "bob", "rating": 0.1, "time": 3, "transaction_id": 3},
]


class TestFeedbackRoute:
    def test_single_object(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", EVENTS[0])
        assert status == 200
        assert body == {
            "accepted": 1,
            "ingested": 1,
            "refreshed": False,
            "watermark": 0,
        }

    def test_batch_envelope(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", {"events": EVENTS})
        assert status == 200
        assert body["accepted"] == 4
        assert body["refreshed"] is True
        assert body["watermark"] == 4

    def test_bare_list(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", EVENTS[:2])
        assert status == 200
        assert body["accepted"] == 2

    def test_invalid_event_is_400(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", {"rating": 0.5})
        assert status == 400
        assert "subject" in body["error"]

    def test_non_list_events_is_400(self, server):
        status, body, _ = request(server, "POST", "/v1/feedback", {"events": "nope"})
        assert status == 400
        assert "'events' must be a list" in body["error"]

    def test_invalid_json_is_400(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/feedback",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()


class TestScoresRoute:
    def test_scores_after_refresh(self, server):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        status, body, _ = request(server, "GET", "/v1/scores")
        assert status == 200
        assert body["watermark"] == 4
        assert body["pending"] == 0
        assert body["ranking"][0] == "alice"
        assert set(body["scores"]) == {"alice", "bob"}

    def test_limit_truncates(self, server):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        status, body, _ = request(server, "GET", "/v1/scores?limit=1")
        assert status == 200
        assert body["ranking"] == ["alice"]
        assert list(body["scores"]) == ["alice"]

    def test_bad_limit_is_400(self, server):
        status, body, _ = request(server, "GET", "/v1/scores?limit=abc")
        assert status == 400
        assert "limit" in body["error"]


class TestPeersRoute:
    def test_known_peer(self, server):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        status, body, _ = request(server, "GET", "/v1/peers/alice")
        assert status == 200
        assert body["peer_id"] == "alice"
        assert body["known"] is True
        assert body["rank"] == 1

    def test_unknown_peer_is_404_with_default_score(self, server, service):
        status, body, _ = request(server, "GET", "/v1/peers/mallory")
        assert status == 404
        assert body["known"] is False
        assert body["score"] == service.config.default_score

    def test_nested_path_is_404(self, server):
        status, body, _ = request(server, "GET", "/v1/peers/a/b")
        assert status == 404
        assert "no such route" in body["error"]


class TestSnapshotRoute:
    def test_snapshot_to_posted_path(self, server, service, tmp_path):
        request(server, "POST", "/v1/feedback", {"events": EVENTS})
        path = tmp_path / "svc.ckpt"
        status, body, _ = request(server, "POST", "/v1/snapshot", {"path": str(path)})
        assert status == 200
        assert body["ingested"] == 4
        assert path.exists()
        restored = ReputationService.restore(str(path))
        assert restored.scores() == service.scores()

    def test_snapshot_without_path_is_400(self, server):
        status, body, _ = request(server, "POST", "/v1/snapshot")
        assert status == 400
        assert "no snapshot path" in body["error"]

    def test_server_default_snapshot_path(self, service, tmp_path):
        path = tmp_path / "default.ckpt"
        server = create_http_server(service, port=0, snapshot_path=str(path))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _, _ = request(server, "POST", "/v1/snapshot")
            assert status == 200
            assert path.exists()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestHealthAndRouting:
    def test_health(self, server):
        status, body, _ = request(server, "GET", "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["mechanism"] == "beta"
        assert body["refresh_every"] == 2

    def test_unknown_routes_are_404(self, server):
        for method, path in [("GET", "/v2/scores"), ("POST", "/v1/scores")]:
            status, body, _ = request(server, method, path)
            assert status == 404
            assert "no such route" in body["error"]


class TestByteDeterminism:
    def test_two_servers_same_stream_answer_identically(self):
        raws = []
        for _ in range(2):
            service = ReputationService(refresh_every=2)
            server = create_http_server(service, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                request(server, "POST", "/v1/feedback", {"events": EVENTS})
                _, _, raw_scores = request(server, "GET", "/v1/scores")
                _, _, raw_peer = request(server, "GET", "/v1/peers/alice")
                raws.append((raw_scores, raw_peer))
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
        assert raws[0] == raws[1]


class TestAsgiAdapter:
    def test_missing_fastapi_raises_pointed_error(self, service):
        try:
            import fastapi  # noqa: F401
        except ImportError:
            from repro.errors import ConfigurationError
            from repro.serving import create_asgi_app

            with pytest.raises(ConfigurationError, match="fastapi"):
                create_asgi_app(service)
        else:  # pragma: no cover - container ships without fastapi
            pytest.skip("fastapi installed; the missing-dependency path is untestable")

"""Kill-and-restore byte-identity: the serving layer's core guarantee.

A service snapshotted mid-stream, destroyed, restored from the checkpoint
and fed the remaining events must publish *byte-identical* scores to a
session that was never interrupted.  Proven twice here: in-process against
the session object, and end-to-end through the ``repro-serve`` subprocess
(SIGKILL included) exactly like the CI serve-gate's restart drill.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serving import (
    ReputationService,
    ResilientClient,
    ServiceConfig,
    WriteAheadLog,
)
from repro.serving.loadgen import (
    build_trace,
    ingest_events,
    request_json,
    scores_body,
)
from repro.serving.wal import config_digest

REFRESH_EVERY = 8


@pytest.fixture(scope="module")
def trace():
    return build_trace(
        "collusion-ring", n_users=12, rounds=6, seed=3, backend="python"
    )


def _control_scores(trace):
    """The published scores of a never-interrupted session."""
    service = ReputationService(refresh_every=REFRESH_EVERY, backend="python")
    service.ingest_many(trace)
    return json.dumps(service.scores(), sort_keys=True)


class TestInProcess:
    def test_snapshot_mid_stream_restores_byte_identically(self, trace, tmp_path):
        half = len(trace) // 2
        service = ReputationService(refresh_every=REFRESH_EVERY, backend="python")
        service.ingest_many(trace[:half])
        path = tmp_path / "mid.ckpt"
        service.snapshot(str(path))
        del service

        restored = ReputationService.restore(str(path))
        restored.ingest_many(trace[half:])
        assert json.dumps(restored.scores(), sort_keys=True) == _control_scores(trace)

    def test_every_split_point_is_safe(self, trace, tmp_path):
        """Byte-identity must not depend on snapshotting at a refresh boundary."""
        control = _control_scores(trace)
        # One split mid-refresh-window, one exactly on a boundary.
        for split in (REFRESH_EVERY + 3, 3 * REFRESH_EVERY):
            service = ReputationService(refresh_every=REFRESH_EVERY, backend="python")
            service.ingest_many(trace[:split])
            path = tmp_path / f"split{split}.ckpt"
            service.snapshot(str(path))
            restored = ReputationService.restore(str(path))
            restored.ingest_many(trace[split:])
            assert json.dumps(restored.scores(), sort_keys=True) == control


class TestWalRecovery:
    """Recovery = snapshot + WAL replay, byte-identical either way."""

    def _wal_service(self, tmp_path, tag):
        config = ServiceConfig(refresh_every=REFRESH_EVERY, backend="python")
        wal, _, _ = WriteAheadLog.open(
            str(tmp_path / f"{tag}.wal"),
            config_sha256=config_digest(config.wal_identity()),
        )
        return ReputationService(config, wal=wal)

    def test_wal_only_recovery_is_byte_identical(self, trace, tmp_path):
        service = self._wal_service(tmp_path, "only")
        for start in range(0, len(trace), 16):
            service.ingest_many(trace[start : start + 16])
        service.close()  # crash stand-in: no snapshot was ever taken

        recovered = ReputationService.recover(
            wal_path=str(tmp_path / "only.wal"),
            config=ServiceConfig(refresh_every=REFRESH_EVERY, backend="python"),
        )
        assert json.dumps(recovered.scores(), sort_keys=True) == _control_scores(trace)
        assert recovered.health()["ingested"] == len(trace)
        recovered.close()

    def test_snapshot_plus_wal_tail_is_byte_identical(self, trace, tmp_path):
        half = len(trace) // 2
        service = self._wal_service(tmp_path, "mix")
        service.ingest_many(trace[:half])
        snapshot = tmp_path / "mix.ckpt"
        service.snapshot(str(snapshot))
        # Post-snapshot traffic lives only in the WAL when the crash hits.
        for start in range(half, len(trace), 8):
            service.ingest_many(trace[start : start + 8])
        service.close()

        recovered = ReputationService.recover(
            wal_path=str(tmp_path / "mix.wal"), snapshot_path=str(snapshot)
        )
        assert json.dumps(recovered.scores(), sort_keys=True) == _control_scores(trace)
        recovered.close()

    def test_recovery_restores_idempotency_keys(self, trace, tmp_path):
        service = self._wal_service(tmp_path, "keys")
        receipt = service.ingest_many(trace[:10], idempotency_key="k-0")
        service.close()

        recovered = ReputationService.recover(
            wal_path=str(tmp_path / "keys.wal"),
            config=ServiceConfig(refresh_every=REFRESH_EVERY, backend="python"),
        )
        replayed = recovered.ingest_many(trace[:10], idempotency_key="k-0")
        assert replayed.duplicate is True
        assert replayed.seq == receipt.seq
        assert replayed.accepted == receipt.accepted
        assert recovered.health()["ingested"] == 10
        recovered.close()


class _Server:
    """A repro-serve subprocess bound to a free port."""

    def __init__(self, tmp_path: Path, tag: str, *extra: str) -> None:
        self.port_file = tmp_path / f"port-{tag}"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.cli",
                "--port",
                "0",
                "--port-file",
                str(self.port_file),
                "--refresh-every",
                str(REFRESH_EVERY),
                "--backend",
                "python",
                *extra,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if self.port_file.exists() and self.port_file.read_text().strip():
                self.port = int(self.port_file.read_text().strip())
                return
            if self.process.poll() is not None:
                raise RuntimeError("repro-serve exited before binding a port")
            time.sleep(0.05)
        self.process.kill()
        raise RuntimeError("repro-serve did not report a port within 30s")

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10)


class TestSubprocess:
    def test_sigkill_restore_resume_matches_control(self, trace, tmp_path):
        half = len(trace) // 2
        snapshot = tmp_path / "svc.ckpt"

        first = _Server(tmp_path, "first")
        try:
            ingest_events("127.0.0.1", first.port, trace[:half], batch_size=16)
            status, vitals, _ = request_json(
                "127.0.0.1",
                first.port,
                "POST",
                "/v1/snapshot",
                {"path": str(snapshot)},
            )
            assert status == 200
            assert vitals["ingested"] == half
        finally:
            first.kill()  # hard crash: no graceful shutdown

        second = _Server(tmp_path, "second", "--restore", str(snapshot))
        try:
            status, health, _ = request_json(
                "127.0.0.1", second.port, "GET", "/v1/health"
            )
            assert status == 200
            assert health["ingested"] == half  # counters survived the crash
            ingest_events("127.0.0.1", second.port, trace[half:], batch_size=16)
            served = scores_body("127.0.0.1", second.port)
        finally:
            second.kill()

        control = ReputationService(refresh_every=REFRESH_EVERY, backend="python")
        control.ingest_many(trace)
        expected = {
            "watermark": control.watermark,
            "pending": control.pending,
            "default_score": control.config.default_score,
            "scores": dict(control.scores()),
            "ranking": control.scores().ranking(),
        }
        expected_body = (
            json.dumps(expected, sort_keys=True) + "\n"
        ).encode("utf-8")
        assert served == expected_body

    def test_sigkill_with_wal_loses_nothing_without_a_snapshot(self, trace, tmp_path):
        half = len(trace) // 2
        wal_path = tmp_path / "serve.wal"

        first = _Server(tmp_path, "wal-first", "--wal", str(wal_path))
        try:
            # Distinct client ids per phase: idempotency keys survive the
            # crash via the WAL, so a fresh client reusing "loadgen-0"
            # would be (correctly) deduplicated instead of ingesting.
            client = ResilientClient("127.0.0.1", first.port, client_id="phase-1")
            ingest_events(
                "127.0.0.1", first.port, trace[:half], batch_size=16, client=client
            )
        finally:
            first.kill()  # SIGKILL: only the WAL carries the acked events

        second = _Server(tmp_path, "wal-second", "--wal", str(wal_path))
        try:
            status, health, _ = request_json(
                "127.0.0.1", second.port, "GET", "/v1/health"
            )
            assert status == 200
            assert health["ingested"] == half  # every acked event survived
            assert health["wal"]["path"] == str(wal_path)
            client = ResilientClient("127.0.0.1", second.port, client_id="phase-2")
            ingest_events(
                "127.0.0.1", second.port, trace[half:], batch_size=16, client=client
            )
            served = scores_body("127.0.0.1", second.port)
        finally:
            second.kill()

        control = ReputationService(refresh_every=REFRESH_EVERY, backend="python")
        control.ingest_many(trace)
        expected = {
            "watermark": control.watermark,
            "pending": control.pending,
            "default_score": control.config.default_score,
            "scores": dict(control.scores()),
            "ranking": control.scores().ranking(),
        }
        expected_body = (
            json.dumps(expected, sort_keys=True) + "\n"
        ).encode("utf-8")
        assert served == expected_body

"""Thread-safety of the service session: no torn reads, ordered acks."""

import threading

from repro.serving import ReputationService, ServiceConfig, WriteAheadLog, verify_wal
from repro.serving.wal import config_digest


def make_service(tmp_path, **overrides):
    config = ServiceConfig(refresh_every=8, **overrides)
    wal, _, _ = WriteAheadLog.open(
        str(tmp_path / "serve.wal"),
        config_sha256=config_digest(config.wal_identity()),
        fsync=False,
    )
    return ReputationService(config, wal=wal)


def event(index, subject):
    return {"subject": subject, "rating": 0.75, "time": index, "transaction_id": index}


def run_threads(targets):
    threads = [threading.Thread(target=target) for target in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)


N_WRITERS = 4
BATCHES_PER_WRITER = 25
BATCH = 3


class TestThreadedIngest:
    def test_every_batch_lands_and_wal_matches_ack_order(self, tmp_path):
        service = make_service(tmp_path)
        receipts = [[] for _ in range(N_WRITERS)]

        def writer(index):
            for batch_no in range(BATCHES_PER_WRITER):
                key = f"w{index}-{batch_no}"
                base = (index * BATCHES_PER_WRITER + batch_no) * BATCH
                events = [event(base + i, f"peer-{index}") for i in range(BATCH)]
                receipts[index].append(
                    (key, service.ingest_many(events, idempotency_key=key))
                )

        run_threads([lambda i=i: writer(i) for i in range(N_WRITERS)])

        total = N_WRITERS * BATCHES_PER_WRITER * BATCH
        assert service.health()["ingested"] == total
        service.close()

        # The WAL holds every acked batch, contiguous, in ack order.
        wal_path = str(tmp_path / "serve.wal")
        assert verify_wal(wal_path) == (N_WRITERS * BATCHES_PER_WRITER, 0)
        _, entries, truncated = WriteAheadLog.open(
            wal_path,
            config_sha256=config_digest(service.config.wal_identity()),
        )
        assert truncated == 0
        assert [entry.seq for entry in entries] == list(range(0, total, BATCH))
        # Ack ordering == WAL ordering: the seq each client was acked with
        # is the seq its batch sits at in the log.
        wal_seq_by_key = {entry.key: entry.seq for entry in entries}
        for per_writer in receipts:
            for key, receipt in per_writer:
                assert receipt.duplicate is False
                assert wal_seq_by_key[key] == receipt.seq

    def test_concurrent_same_key_ingests_once(self, tmp_path):
        service = make_service(tmp_path)
        events = [event(i, "alice") for i in range(BATCH)]
        results = []

        def contender():
            results.append(service.ingest_many(events, idempotency_key="shared"))

        run_threads([contender for _ in range(8)])
        assert service.health()["ingested"] == BATCH
        originals = [receipt for receipt in results if not receipt.duplicate]
        assert len(originals) == 1
        assert all(receipt.accepted == BATCH for receipt in results)
        service.close()


class TestReadersUnderLoad:
    def test_watermarks_monotone_and_counters_never_torn(self, tmp_path):
        service = make_service(tmp_path)
        stop = threading.Event()
        torn = []
        watermarks_seen = [[] for _ in range(2)]

        def writer(index):
            for batch_no in range(BATCHES_PER_WRITER):
                base = (index * BATCHES_PER_WRITER + batch_no) * BATCH
                service.ingest_many(
                    [event(base + i, f"peer-{index}") for i in range(BATCH)]
                )
            stop.set()

        def reader(index):
            while not stop.is_set():
                health = service.health()
                if health["pending"] != health["ingested"] - health["watermark"]:
                    torn.append(health)
                view = service.scores()
                if set(view.ranking()) != set(view):
                    torn.append(dict(view))
                watermarks_seen[index].append(health["watermark"])

        run_threads(
            [lambda: writer(0), lambda: writer(1)]
            + [lambda i=i: reader(i) for i in range(2)]
        )
        assert torn == []
        for seen in watermarks_seen:
            assert seen == sorted(seen)
        service.close()


class TestSnapshotUnderLoad:
    def test_snapshot_mid_traffic_recovers_identically(self, tmp_path):
        service = make_service(tmp_path)
        snapshots = []

        def writer(index):
            for batch_no in range(BATCHES_PER_WRITER):
                base = (index * BATCHES_PER_WRITER + batch_no) * BATCH
                service.ingest_many(
                    [event(base + i, f"peer-{index}") for i in range(BATCH)]
                )

        def snapshotter():
            for round_no in range(5):
                path = tmp_path / f"mid-{round_no}.ckpt"
                service.snapshot(str(path))
                snapshots.append(path)

        run_threads([lambda i=i: writer(i) for i in range(N_WRITERS)] + [snapshotter])
        service.refresh()
        live_scores = dict(service.scores())
        live_ingested = service.health()["ingested"]
        service.close()

        # Latest snapshot + WAL replay reproduces the live session exactly.
        recovered = ReputationService.recover(
            wal_path=str(tmp_path / "serve.wal"),
            snapshot_path=str(snapshots[-1]),
            wal_fsync=False,
        )
        assert recovered.health()["ingested"] == live_ingested
        recovered.refresh()
        assert dict(recovered.scores()) == live_scores
        recovered.close()

"""The resilient client: retries, jitter, the breaker, exactly-once ingest."""

import socket
import threading

import pytest

import repro.faults as faults
from repro.errors import CircuitOpenError, ConfigurationError, RequestFailedError
from repro.serving import (
    CircuitBreaker,
    ClientRetryPolicy,
    ReputationService,
    ResilientClient,
    create_http_server,
)

EVENTS = [
    {"subject": "alice", "rating": 1.0, "time": 0, "transaction_id": 0},
    {"subject": "bob", "rating": 0.2, "time": 1, "transaction_id": 1},
]


@pytest.fixture()
def service():
    return ReputationService(refresh_every=2)


@pytest.fixture()
def server(service):
    server = create_http_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def make_client(server, **kwargs):
    host, port = server.server_address[:2]
    kwargs.setdefault("sleeper", lambda wait: None)
    return ResilientClient(host, port, **kwargs)


def free_port():
    """A port with nothing listening on it (connection refused, fast)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestPolicyValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientRetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ClientRetryPolicy(timeout=0)
        with pytest.raises(ConfigurationError):
            ClientRetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)


class TestBackoffAndJitter:
    def test_same_seed_same_client_id_same_waits(self):
        waits = []
        for _ in range(2):
            client = ResilientClient("h", 1, client_id="c", policy=ClientRetryPolicy(seed=3))
            waits.append([client._backoff(attempt, 0.0) for attempt in range(1, 6)])
        assert waits[0] == waits[1]

    def test_different_client_ids_decorrelate(self):
        a = ResilientClient("h", 1, client_id="a", policy=ClientRetryPolicy(seed=3))
        b = ResilientClient("h", 1, client_id="b", policy=ClientRetryPolicy(seed=3))
        assert [a._backoff(i, 0.0) for i in range(1, 6)] != [
            b._backoff(i, 0.0) for i in range(1, 6)
        ]

    def test_waits_double_then_cap(self):
        policy = ClientRetryPolicy(backoff_base=0.1, backoff_cap=0.4, jitter=0.0)
        client = ResilientClient("h", 1, policy=policy)
        assert [client._backoff(i, 0.0) for i in range(1, 5)] == [0.1, 0.2, 0.4, 0.4]

    def test_retry_after_hint_floors_the_wait(self):
        policy = ClientRetryPolicy(backoff_base=0.01, backoff_cap=2.0, jitter=0.25)
        client = ResilientClient("h", 1, policy=policy)
        wait = client._backoff(1, 0.5)
        assert 0.5 * 0.75 <= wait <= 0.5 * 1.25

    def test_jitter_stays_within_bounds(self):
        policy = ClientRetryPolicy(backoff_base=0.1, backoff_cap=1.0, jitter=0.25)
        client = ResilientClient("h", 1, policy=policy)
        for attempt in range(1, 20):
            wait = client._backoff(attempt, 0.0)
            assert 0.0 <= wait <= 1.0


class TestCircuitBreaker:
    def test_open_after_threshold_then_half_open_probe(self, monkeypatch):
        now = [0.0]
        monkeypatch.setattr("repro.serving.client.sla_clock", lambda: now[0])
        breaker = CircuitBreaker(failure_threshold=2, reset_after=1.0)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        now[0] = 1.5
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # a second concurrent probe is refused
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self, monkeypatch):
        now = [0.0]
        monkeypatch.setattr("repro.serving.client.sla_clock", lambda: now[0])
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0)
        breaker.record_failure()
        now[0] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_dead_endpoint_trips_breaker_and_fails_fast(self):
        port = free_port()
        client = ResilientClient(
            "127.0.0.1",
            port,
            policy=ClientRetryPolicy(max_attempts=5, timeout=0.5, backoff_base=0.0),
            breaker=CircuitBreaker(failure_threshold=2, reset_after=60.0),
            sleeper=lambda wait: None,
        )
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/v1/health")
        # The circuit is open: the next request does not touch the socket.
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/v1/health")


class TestRetryLoop:
    def test_backpressure_retries_then_succeeds(self, server, service):
        waits = []
        client = make_client(server, sleeper=waits.append)
        plan = faults.FaultPlan(
            rules=(faults.FaultRule(site="http.admit", action="degrade", times=2),)
        )
        with faults.active(plan):
            receipt = client.ingest(EVENTS)
        assert receipt["accepted"] == 2
        assert client.backpressure_responses == 2
        assert client.retries == 2
        assert len(waits) == 2
        # Sheds honored the server's retry hint as a floor.
        assert all(wait >= service.config.retry_after * 0.75 for wait in waits)
        # Backpressure never trips the breaker.
        assert client.breaker.state == "closed"

    def test_persistent_read_only_exhausts_budget(self, server, service):
        service.enter_read_only("drill")
        client = make_client(server, policy=ClientRetryPolicy(max_attempts=2))
        with pytest.raises(RequestFailedError) as info:
            client.ingest(EVENTS)
        assert info.value.status == 503
        assert info.value.attempts == 2
        assert client.backpressure_responses == 2

    def test_non_retryable_status_returns_immediately(self, server):
        client = make_client(server)
        status, payload, _ = client.request("POST", "/v1/feedback", {"events": "nope"})
        assert status == 400
        assert "must be a list" in payload["error"]
        assert client.retries == 0


class TestExactlyOnce:
    def test_auto_keys_increment(self, server, service):
        client = make_client(server, client_id="c9")
        client.ingest(EVENTS[:1])
        client.ingest(EVENTS[1:])
        assert service.health()["ingested"] == 2
        assert [receipt["duplicate"] for receipt in client.acked] == [False, False]
        assert client.total_acked_events == 2

    def test_retried_batch_never_double_ingests(self, server, service):
        client = make_client(server)
        first = client.ingest(EVENTS, batch_key="once")
        second = client.ingest(EVENTS, batch_key="once")
        assert first["duplicate"] is False
        assert second["duplicate"] is True
        assert second["seq"] == first["seq"]
        assert service.health()["ingested"] == 2
        # Explicitly re-sending a key appends a second (duplicate) receipt;
        # the auto-key path the drills rely on sends each key once.
        assert client.total_acked_events == 4

    def test_helpers_roundtrip(self, server):
        client = make_client(server)
        client.ingest(EVENTS)
        scores = client.scores()
        assert scores["watermark"] == 2
        assert client.raw_scores().endswith(b"\n")
        assert client.peer("alice")["known"] is True
        assert client.health()["status"] == "ok"

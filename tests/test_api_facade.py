"""Import contract of the blessed public facade (``repro.api``).

These tests pin the facade's shape so accidental breakage — a renamed
symbol, a dropped export, an unannotated public function, an internal name
leaking out — fails CI instead of surfacing in downstream client code.
"""

import importlib
import inspect
import subprocess
import sys
import types

import pytest

import repro
import repro.api as api


class TestApiAllResolves:
    def test_every_name_in_all_resolves(self):
        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.__all__ lists missing name {name!r}"

    def test_all_is_sorted_unique(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_no_private_names_exported(self):
        # Dunders (``__version__``) are public by convention; single-leading-
        # underscore names would be genuine leaks.
        leaked = [
            name
            for name in api.__all__
            if name.startswith("_") and not name.startswith("__")
        ]
        assert leaked == []

    def test_fresh_interpreter_import(self):
        # A clean import must succeed with no circular-import landmines.
        code = "import repro.api; print(len(repro.api.__all__))"
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert int(result.stdout.strip()) == len(api.__all__)


class TestApiAnnotations:
    def test_exported_functions_fully_annotated(self):
        unannotated = []
        for name in api.__all__:
            obj = getattr(api, name)
            if not inspect.isfunction(obj):
                continue
            signature = inspect.signature(obj)
            for parameter in signature.parameters.values():
                if parameter.annotation is inspect.Parameter.empty:
                    unannotated.append(f"{name}({parameter.name})")
            if signature.return_annotation is inspect.Signature.empty:
                unannotated.append(f"{name} -> ?")
        assert unannotated == []

    def test_exported_modules_are_the_blessed_set(self):
        # Two namespaced control modules plus the experiment-definition
        # modules (provisional tier; benchmarks use module-level attrs).
        modules = sorted(
            name
            for name in api.__all__
            if isinstance(getattr(api, name), types.ModuleType)
        )
        assert modules == [
            "ablations",
            "accel",
            "claims",
            "faults",
            "figure1",
            "figure2_left",
            "figure2_right",
            "privacy_eval",
            "reputation_eval",
            "robustness",
            "satisfaction_eval",
        ]


class TestLazyPackageForwarding:
    def test_headline_names_forward_to_facade(self):
        for name in repro._FACADE_EXPORTS:
            assert getattr(repro, name) is getattr(api, name)

    def test_facade_exports_subset_of_api_all(self):
        assert set(repro._FACADE_EXPORTS) <= set(api.__all__)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'nonsense'"):
            repro.nonsense

    def test_dir_includes_facade_names(self):
        listing = dir(repro)
        assert "ReputationService" in listing
        assert "run_scenario" in listing

    def test_plain_import_stays_lazy(self):
        # `import repro` must NOT drag in the serving layer or the facade;
        # a fresh interpreter proves it (this process already imported both).
        code = (
            "import sys, repro; "
            "print('repro.api' in sys.modules, 'repro.serving' in sys.modules)"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert result.stdout.split() == ["False", "False"]

    def test_submodule_passthrough_does_not_import_facade(self):
        # `repro.faults` / `repro.accel` are real submodules; resolving them
        # through the package must not pull the whole facade in.
        code = (
            "import sys, repro; repro.faults; repro.accel; "
            "print('repro.api' in sys.modules)"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert result.stdout.strip() == "False"


class TestDocsStayInSync:
    def test_api_doc_mentions_every_export_group(self):
        from pathlib import Path

        doc = (Path(__file__).resolve().parent.parent / "docs" / "API.md").read_text()
        for name in repro._FACADE_EXPORTS:
            if isinstance(getattr(api, name), types.ModuleType):
                continue
            assert f"`{name}`" in doc, f"docs/API.md does not document {name!r}"

    def test_readme_links_api_doc(self):
        from pathlib import Path

        readme = (Path(__file__).resolve().parent.parent / "README.md").read_text()
        assert "docs/API.md" in readme


def test_module_reimport_is_stable():
    before = set(api.__all__)
    importlib.reload(api)
    assert set(api.__all__) == before

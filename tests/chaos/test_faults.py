"""The deterministic fault-injection layer: plan semantics and the runtime."""

import pytest

from repro import faults
from repro.errors import ConfigurationError, InjectedFault
from repro.faults import FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def deactivate_plans():
    faults.activate(None)
    yield
    faults.activate(None)


class TestPlanData:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            rules=(
                FaultRule(site="sweep.task", action="raise", match=(("task_index", 2),)),
                FaultRule(site="journal.record", action="corrupt", times=None),
                FaultRule(
                    site="sweep.task",
                    action="kill",
                    probability=0.5,
                    latch="kill-once",
                ),
            ),
            seed=11,
            latch_dir=str(tmp_path),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            FaultRule(site="x", action="explode")

    def test_latch_rule_needs_latch_dir(self):
        with pytest.raises(ConfigurationError, match="latch_dir"):
            FaultPlan(rules=(FaultRule(site="x", action="kill", latch="once"),))

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            FaultPlan.from_json("{not json")
        with pytest.raises(ConfigurationError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")


class TestFire:
    def test_raise_action_raises_with_site_and_detail(self):
        plan = FaultPlan(rules=(FaultRule(site="sweep.task", action="raise"),))
        with faults.active(plan):
            with pytest.raises(InjectedFault, match=r"sweep\.task.*task_index=3"):
                faults.fire("sweep.task", task_index=3)

    def test_site_and_match_filter(self):
        plan = FaultPlan(
            rules=(FaultRule(site="sweep.task", action="raise", match=(("task_index", 2),)),)
        )
        with faults.active(plan):
            assert faults.fire("journal.record", task_index=2) is None
            assert faults.fire("sweep.task", task_index=1) is None
            with pytest.raises(InjectedFault):
                faults.fire("sweep.task", task_index=2)

    def test_times_cap_is_per_process(self):
        plan = FaultPlan(rules=(FaultRule(site="probe", action="corrupt", times=2),))
        with faults.active(plan):
            assert faults.fire("probe") == "corrupt"
            assert faults.fire("probe") == "corrupt"
            assert faults.fire("probe") is None
            faults.reset_worker_state()  # a fresh worker gets its own budget
            assert faults.fire("probe") == "corrupt"

    def test_probability_is_seeded_and_reproducible(self):
        plan = FaultPlan(
            rules=(FaultRule(site="probe", action="degrade", times=None, probability=0.5),),
            seed=21,
        )
        with faults.active(plan):
            first = [faults.fire("probe") for _ in range(20)]
        with faults.active(plan):
            second = [faults.fire("probe") for _ in range(20)]
        assert first == second
        assert "degrade" in first and None in first  # the coin actually flips

    def test_latch_fires_once_across_activations(self, tmp_path):
        plan = FaultPlan(
            rules=(FaultRule(site="probe", action="corrupt", latch="once"),),
            latch_dir=str(tmp_path),
        )
        with faults.active(plan):
            assert faults.fire("probe") == "corrupt"
        assert (tmp_path / "once").exists()
        # A different process (simulated by a fresh activation) sees the
        # latch file and stays quiet.
        with faults.active(plan):
            assert faults.fire("probe") is None

    def test_no_plan_is_a_no_op(self):
        assert faults.fire("anything", task_index=0) is None

    def test_env_plan_reaches_fire(self, monkeypatch):
        plan = FaultPlan(rules=(FaultRule(site="probe", action="degrade"),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        assert faults.fire("probe") == "degrade"
        # Changing the variable re-parses and resets counters.
        fresh = FaultPlan(rules=(FaultRule(site="probe", action="corrupt"),), seed=9)
        monkeypatch.setenv(faults.ENV_VAR, fresh.to_json())
        assert faults.fire("probe") == "corrupt"

    def test_activated_plan_overrides_env(self, monkeypatch):
        env_plan = FaultPlan(rules=(FaultRule(site="probe", action="corrupt"),))
        monkeypatch.setenv(faults.ENV_VAR, env_plan.to_json())
        with faults.active(FaultPlan()):
            assert faults.fire("probe") is None

    def test_first_eligible_rule_wins(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="probe", action="degrade"),
                FaultRule(site="probe", action="corrupt"),
            )
        )
        with faults.active(plan):
            assert faults.fire("probe") == "degrade"
            assert faults.fire("probe") == "corrupt"  # first rule exhausted


class TestCorruptBytes:
    def test_flips_one_middle_bit(self):
        data = b"abcdefg"
        damaged = faults.corrupt_bytes(data)
        assert damaged != data
        assert len(damaged) == len(data)
        assert sum(a != b for a, b in zip(data, damaged, strict=True)) == 1

    def test_empty_input_still_changes(self):
        assert faults.corrupt_bytes(b"") == b"\x00"

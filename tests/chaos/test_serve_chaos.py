"""Serving-layer chaos: SIGKILL mid-window, corrupt WAL lines, read-only flips.

The headline drill — the one the CI chaos-gate also runs end to end — is
SIGKILL-under-live-traffic: a ``repro-serve`` subprocess with a WAL dies at
a planned ``wal.append`` while a resilient client streams batches at it;
after restart, *every event the client saw acked* is present and the scores
are byte-identical to an uninterrupted control session.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.faults as faults
from repro.errors import ReadOnlyError, RequestFailedError
from repro.serving import (
    ClientRetryPolicy,
    ReputationService,
    ResilientClient,
    ServiceConfig,
    TornTailWarning,
    WriteAheadLog,
    verify_wal,
)
from repro.serving.loadgen import build_trace
from repro.serving.wal import config_digest

REFRESH_EVERY = 8
BATCH = 8


def wal_service(tmp_path, tag):
    config = ServiceConfig(refresh_every=REFRESH_EVERY, backend="python")
    wal, _, _ = WriteAheadLog.open(
        str(tmp_path / f"{tag}.wal"),
        config_sha256=config_digest(config.wal_identity()),
    )
    return ReputationService(config, wal=wal)


@pytest.fixture(scope="module")
def trace():
    return build_trace("collusion-ring", n_users=12, rounds=6, seed=3, backend="python")


class TestWalAppendFaults:
    def test_raise_at_append_flips_read_only_and_acks_nothing(self, tmp_path, trace):
        service = wal_service(tmp_path, "ro")
        service.ingest_many(trace[:BATCH])
        plan = faults.FaultPlan(
            rules=(faults.FaultRule(site="wal.append", action="raise"),)
        )
        with faults.active(plan):
            with pytest.raises(ReadOnlyError, match="WAL append failed"):
                service.ingest_many(trace[BATCH : 2 * BATCH])
        # The failed batch was never acked and never folded.
        assert service.state == "read_only"
        assert "WAL append failed" in service.read_only_reason
        assert service.health()["ingested"] == BATCH
        # Reads still answer; a later write is refused until the operator acts.
        assert service.scores() is not None
        with pytest.raises(ReadOnlyError):
            service.ingest_many(trace[:1])
        service.resume_writes()
        service.ingest_many(trace[BATCH : 2 * BATCH])
        assert service.health()["ingested"] == 2 * BATCH
        service.close()

    def test_corrupt_append_surfaces_as_torn_tail(self, tmp_path, trace):
        service = wal_service(tmp_path, "rot")
        service.ingest_many(trace[:BATCH])
        plan = faults.FaultPlan(
            rules=(
                faults.FaultRule(
                    site="wal.append", action="corrupt", match=(("seq", BATCH),)
                ),
            )
        )
        with faults.active(plan):
            service.ingest_many(trace[BATCH : 2 * BATCH])  # acked, line rotted
        service.close()

        wal_path = str(tmp_path / "rot.wal")
        assert verify_wal(wal_path) == (1, 1)
        with pytest.warns(TornTailWarning):
            recovered = ReputationService.recover(
                wal_path=wal_path,
                config=ServiceConfig(refresh_every=REFRESH_EVERY, backend="python"),
            )
        # Storage rot on the tail costs exactly that unverifiable batch.
        assert recovered.health()["ingested"] == BATCH
        recovered.close()

    def test_corrupt_interior_line_blocks_recovery(self, tmp_path, trace):
        from repro.errors import IntegrityError

        service = wal_service(tmp_path, "interior")
        service.ingest_many(trace[:BATCH])
        plan = faults.FaultPlan(
            rules=(
                faults.FaultRule(
                    site="wal.append", action="corrupt", match=(("seq", BATCH),)
                ),
            )
        )
        with faults.active(plan):
            service.ingest_many(trace[BATCH : 2 * BATCH])
        service.ingest_many(trace[2 * BATCH : 3 * BATCH])  # acked data above the rot
        service.close()

        wal_path = str(tmp_path / "interior.wal")
        with pytest.raises(IntegrityError, match="damaged interior"):
            verify_wal(wal_path)
        with pytest.raises(IntegrityError, match="damaged interior"):
            ReputationService.recover(
                wal_path=wal_path,
                config=ServiceConfig(refresh_every=REFRESH_EVERY, backend="python"),
            )


class _Server:
    """A repro-serve subprocess with an optional fault plan in its env."""

    def __init__(self, tmp_path: Path, tag: str, *extra: str, env_extra=None) -> None:
        self.port_file = tmp_path / f"port-{tag}"
        env = dict(os.environ)
        env.pop("REPRO_FAULTS", None)
        src = str(Path(__file__).resolve().parents[2] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        env.update(env_extra or {})
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.cli",
                "--port",
                "0",
                "--port-file",
                str(self.port_file),
                "--refresh-every",
                str(REFRESH_EVERY),
                "--backend",
                "python",
                *extra,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if self.port_file.exists() and self.port_file.read_text().strip():
                self.port = int(self.port_file.read_text().strip())
                return
            if self.process.poll() is not None:
                raise RuntimeError("repro-serve exited before binding a port")
            time.sleep(0.05)
        self.process.kill()
        raise RuntimeError("repro-serve did not report a port within 30s")

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10)


class TestSigkillMidWindow:
    def test_every_acked_event_survives_a_kill_at_append(self, tmp_path, trace):
        """The PR-10 headline: SIGKILL mid-append loses nothing acked."""
        wal_path = tmp_path / "serve.wal"
        kill_seq = 4 * BATCH
        plan = json.dumps(
            {
                "seed": 0,
                "rules": [
                    {
                        "site": "wal.append",
                        "action": "kill",
                        "match": {"seq": kill_seq},
                        "times": 1,
                    }
                ],
            }
        )

        first = _Server(
            tmp_path, "kill", "--wal", str(wal_path), env_extra={"REPRO_FAULTS": plan}
        )
        client = ResilientClient(
            "127.0.0.1",
            first.port,
            client_id="chaos",
            policy=ClientRetryPolicy(max_attempts=2, timeout=5.0, backoff_base=0.01),
        )
        died_at = None
        try:
            for start in range(0, len(trace), BATCH):
                try:
                    client.ingest(trace[start : start + BATCH])
                except RequestFailedError:
                    died_at = start
                    break
            assert died_at is not None, "the kill rule never fired"
        finally:
            first.kill()

        acked = client.total_acked_events
        assert acked == kill_seq  # everything before the killed batch was acked

        second = _Server(tmp_path, "after", "--wal", str(wal_path))
        try:
            survivor = ResilientClient("127.0.0.1", second.port, client_id="survivor")
            health = survivor.health()
            # Zero acked events lost; the killed batch was never acked.
            assert health["ingested"] == acked
            # Finish the stream and compare byte-identically to a session
            # that never crashed.
            for start in range(died_at, len(trace), BATCH):
                survivor.ingest(trace[start : start + BATCH])
            served = survivor.raw_scores()
        finally:
            second.kill()

        control = ReputationService(refresh_every=REFRESH_EVERY, backend="python")
        control.ingest_many(trace)
        expected = {
            "watermark": control.watermark,
            "pending": control.pending,
            "default_score": control.config.default_score,
            "scores": dict(control.scores()),
            "ranking": control.scores().ranking(),
        }
        assert served == (json.dumps(expected, sort_keys=True) + "\n").encode("utf-8")

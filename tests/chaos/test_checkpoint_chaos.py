"""Checkpoint storage under injected damage: rot is detected, never trusted."""

import pytest

from repro import faults
from repro.errors import CheckpointError, InjectedFault
from repro.faults import FaultPlan, FaultRule
from repro.simulation.checkpoint import read_checkpoint, write_checkpoint


@pytest.fixture(autouse=True)
def deactivate_plans():
    faults.activate(None)
    yield
    faults.activate(None)


def test_corrupt_at_save_is_caught_at_load(tmp_path):
    """The digest is computed over the intact payload, so a corruption
    between digesting and writing is exactly what the reader must catch."""
    path = str(tmp_path / "state.ckpt")
    plan = FaultPlan(rules=(FaultRule(site="checkpoint.save", action="corrupt"),))
    with faults.active(plan):
        write_checkpoint(path, "probe", {"value": 42}, round_index=3)
    with pytest.raises(CheckpointError, match="SHA-256"):
        read_checkpoint(path)


def test_crash_at_save_preserves_previous_checkpoint(tmp_path):
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(path, "probe", "generation-1", round_index=1)
    plan = FaultPlan(
        rules=(
            FaultRule(
                site="checkpoint.save", action="raise", match=(("round_index", 2),)
            ),
        )
    )
    with faults.active(plan):
        with pytest.raises(InjectedFault):
            write_checkpoint(path, "probe", "generation-2", round_index=2)
    _, payload = read_checkpoint(path, expected_kind="probe")
    assert payload == "generation-1"


def test_match_on_kind_targets_one_checkpoint_family(tmp_path):
    plan = FaultPlan(
        rules=(
            FaultRule(
                site="checkpoint.save", action="corrupt", match=(("kind", "scenario"),)
            ),
        )
    )
    simulator_path = str(tmp_path / "sim.ckpt")
    scenario_path = str(tmp_path / "scenario.ckpt")
    with faults.active(plan):
        write_checkpoint(simulator_path, "simulator-like", [1], round_index=0)
        write_checkpoint(scenario_path, "scenario", [1], round_index=0)
    read_checkpoint(simulator_path)  # untouched family loads fine
    with pytest.raises(CheckpointError):
        read_checkpoint(scenario_path)

"""Sweep execution under injected faults: retries, degradation, worker loss.

Every recovery path must leave the record bytes exactly as a fault-free
sweep would — faults may cost time, never fidelity.
"""

import pytest

from repro import faults
from repro.experiments.results import records_to_json
from repro.experiments.sweep import RetryPolicy, SweepSpec, run_sweep
from repro.faults import FaultPlan, FaultRule

SPEC = dict(
    experiment="figure1",
    grids={"n_users": [12, 16], "rounds": [6, 8]},
)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.001)


@pytest.fixture(autouse=True)
def deactivate_plans():
    faults.activate(None)
    yield
    faults.activate(None)


def make_spec(seed=7):
    return SweepSpec(**SPEC, seed=seed)


def _json(result):
    return records_to_json(result.records, campaign=result.spec.campaign_metadata())


class TestTransientFaults:
    def test_transient_exception_retried_to_identical_records(self):
        cold = _json(run_sweep(make_spec()))
        plan = FaultPlan(
            rules=(
                FaultRule(site="sweep.task", action="raise", match=(("task_index", 1),)),
            )
        )
        with faults.active(plan):
            recovered = _json(run_sweep(make_spec(), retry=FAST_RETRY))
        assert recovered == cold

    def test_repeated_transients_within_budget_still_recover(self):
        cold = _json(run_sweep(make_spec()))
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="sweep.task", action="raise", match=(("task_index", 2),), times=2
                ),
            )
        )
        with faults.active(plan):
            recovered = _json(run_sweep(make_spec(), retry=FAST_RETRY))
        assert recovered == cold

    def test_exhausted_retries_become_a_structured_failure_record(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="sweep.task",
                    action="raise",
                    match=(("task_index", 1),),
                    times=None,
                ),
            )
        )
        with faults.active(plan):
            result = run_sweep(
                make_spec(), retry=RetryPolicy(max_attempts=2, backoff_base=0.001)
            )
        assert result.n_errors == 1
        (failed,) = result.failed_records
        assert failed.task_index == 1
        assert failed.status == "error"
        assert failed.failure["exception"] == "InjectedFault"
        assert failed.failure["retries"] == 1
        assert "InjectedFault" in failed.failure["traceback"]
        # The other tasks are untouched by the neighbour's failure.
        assert result.n_ok == 3

    def test_failure_without_retry_policy_records_zero_retries(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="sweep.task", action="raise", match=(("task_index", 0),)),
            )
        )
        with faults.active(plan):
            result = run_sweep(make_spec())
        (failed,) = result.failed_records
        assert failed.failure["retries"] == 0


class TestDegradedMode:
    def test_forced_python_backend_changes_no_bytes(self):
        cold = _json(run_sweep(make_spec()))
        plan = FaultPlan(
            rules=(FaultRule(site="sweep.task", action="degrade", times=None),)
        )
        with faults.active(plan):
            degraded = _json(run_sweep(make_spec()))
        assert degraded == cold


class TestWorkerLoss:
    def test_sigkilled_worker_rebuilds_pool_and_matches_cold_records(
        self, tmp_path, monkeypatch
    ):
        cold = _json(run_sweep(make_spec(), jobs=2, chunksize=1))
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="sweep.task",
                    action="kill",
                    match=(("task_index", 2),),
                    latch="kill-once",
                ),
            ),
            latch_dir=str(tmp_path),
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        survived = _json(run_sweep(make_spec(), jobs=2, chunksize=1))
        assert survived == cold
        # The latch armed exactly when the worker died, proving the kill
        # actually struck (and kept the rebuilt worker alive).
        assert (tmp_path / "kill-once").exists()

    def test_sigkilled_worker_with_journal_still_resumable(self, tmp_path, monkeypatch):
        cold = _json(run_sweep(make_spec()))
        journal = str(tmp_path / "sweep.jnl")
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="sweep.task",
                    action="kill",
                    match=(("task_index", 1),),
                    latch="kill-once",
                ),
            ),
            latch_dir=str(tmp_path),
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        first = run_sweep(make_spec(), jobs=2, chunksize=1, journal=journal)
        assert _json(first) == cold
        monkeypatch.delenv(faults.ENV_VAR)
        second = run_sweep(make_spec(), jobs=2, chunksize=1, journal=journal)
        assert second.n_resumed == 4
        assert _json(second) == cold


class TestJournalFaults:
    def test_corrupted_journal_line_heals_on_rerun(self, tmp_path):
        cold = _json(run_sweep(make_spec()))
        journal = str(tmp_path / "sweep.jnl")
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="journal.record", action="corrupt", match=(("task_index", 2),)
                ),
            )
        )
        with faults.active(plan):
            damaged = run_sweep(make_spec(), journal=journal)
        assert _json(damaged) == cold  # in-memory records were never touched

        executed = []
        healed = run_sweep(make_spec(), journal=journal, on_record=executed.append)
        assert [record.task_index for record in executed] == [2]
        assert healed.n_resumed == 3
        assert _json(healed) == cold

"""Checkpoint/resume byte-identity for scenario runs, per mechanism and backend.

The contract: a run that crashes mid-flight and resumes from its checkpoint
produces an experiment record byte-identical to a run that was never
interrupted — for every reputation mechanism and both compute backends.
"""

import pytest

from repro import faults
from repro.errors import InjectedFault
from repro.faults import FaultPlan, FaultRule
from repro.scenarios.runner import ScenarioRunConfig, resume_scenario, run_scenario
from repro.scenarios.schema.library import scenario_record_json

MECHANISMS = ("none", "average", "beta", "eigentrust", "powertrust")
BACKENDS = ("python", "vectorized")


@pytest.fixture(autouse=True)
def deactivate_plans():
    faults.activate(None)
    yield
    faults.activate(None)


def make_config(mechanism="beta", backend="python", scenario="traitor-oscillation"):
    return ScenarioRunConfig(
        scenario=scenario,
        mechanism=mechanism,
        n_users=16,
        rounds=10,
        seed=3,
        backend=backend,
    )


def crash_then_resume(config, tmp_path):
    """Run with checkpointing, die at the final checkpoint save, resume."""
    path = str(tmp_path / f"{config.mechanism}-{config.backend}.ckpt")
    crash_at_end = FaultPlan(
        rules=(
            FaultRule(
                site="checkpoint.save",
                action="raise",
                match=(("round_index", config.rounds),),
            ),
        )
    )
    with faults.active(crash_at_end):
        with pytest.raises(InjectedFault):
            run_scenario(config, checkpoint_every=5, checkpoint_path=path)
    # The crash struck while saving the round-10 snapshot: the file still
    # holds the round-5 state, so resume re-executes the back half.
    return resume_scenario(path)


@pytest.mark.parametrize("mechanism", MECHANISMS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_resume_is_byte_identical(mechanism, backend, tmp_path):
    config = make_config(mechanism=mechanism, backend=backend)
    uninterrupted = scenario_record_json(run_scenario(config))
    resumed = scenario_record_json(crash_then_resume(config, tmp_path))
    assert resumed == uninterrupted


def test_segmented_run_is_byte_identical(tmp_path):
    config = make_config()
    uninterrupted = scenario_record_json(run_scenario(config))
    segmented = scenario_record_json(
        run_scenario(
            config,
            checkpoint_every=2,
            checkpoint_path=str(tmp_path / "segmented.ckpt"),
        )
    )
    assert segmented == uninterrupted


def test_resume_of_completed_checkpoint_collects_without_rerunning(tmp_path):
    config = make_config()
    path = str(tmp_path / "done.ckpt")
    direct = scenario_record_json(
        run_scenario(config, checkpoint_every=5, checkpoint_path=path)
    )
    # The final checkpoint sits at the last round; resuming it has no
    # rounds left to run and must still reproduce the record.
    assert scenario_record_json(resume_scenario(path)) == direct


def test_resume_continues_checkpointing_into_the_source_file(tmp_path):
    config = make_config()
    path = tmp_path / "rolling.ckpt"
    crash_at_end = FaultPlan(
        rules=(
            FaultRule(
                site="checkpoint.save",
                action="raise",
                match=(("round_index", config.rounds),),
            ),
        )
    )
    with faults.active(crash_at_end):
        with pytest.raises(InjectedFault):
            run_scenario(config, checkpoint_every=5, checkpoint_path=str(path))
    before = path.read_bytes()
    resume_scenario(str(path), checkpoint_every=5)
    # The resumed run reached round 10 and rolled the checkpoint forward.
    assert path.read_bytes() != before


def test_collusion_ring_crash_resume(tmp_path):
    """A second scenario family, so the contract is not traitor-specific."""
    config = make_config(scenario="collusion-ring", mechanism="eigentrust")
    uninterrupted = scenario_record_json(run_scenario(config))
    assert scenario_record_json(crash_then_resume(config, tmp_path)) == uninterrupted

"""Unit tests for the PriServ-like privacy service."""

import pytest

from repro.errors import AccessDeniedError, ConfigurationError, UnknownDataError
from repro.privacy.policy import (
    Audience,
    Obligation,
    PolicyRule,
    PrivacyPolicy,
    permissive_policy,
    restrictive_policy,
)
from repro.privacy.priserv import PriServService
from repro.privacy.purposes import Purpose


PEERS = ["alice", "bob", "carol", "dave"]


@pytest.fixture()
def service() -> PriServService:
    svc = PriServService(
        peer_ids=PEERS,
        trust_oracle=lambda peer: {"bob": 0.9, "carol": 0.2}.get(peer, 0.5),
        friendship_oracle=lambda requester, owner: (requester, owner) in {
            ("bob", "alice"), ("alice", "bob")
        },
    )
    svc.register_policy(permissive_policy("alice"))
    svc.publish("alice", "alice/city", "Nantes", sensitivity=0.2)
    return svc


class TestConstructionAndPublication:
    def test_requires_peers(self):
        with pytest.raises(ConfigurationError):
            PriServService(peer_ids=[])

    def test_publish_requires_policy(self):
        svc = PriServService(peer_ids=PEERS)
        with pytest.raises(ConfigurationError):
            svc.publish("alice", "alice/city", "Nantes")

    def test_publish_with_inline_policy(self):
        svc = PriServService(peer_ids=PEERS)
        item = svc.publish("alice", "alice/city", "Nantes", policy=permissive_policy("alice"))
        assert item.responsible_peer in PEERS
        assert svc.policy_of("alice") is not None

    def test_inline_policy_owner_must_match(self):
        svc = PriServService(peer_ids=PEERS)
        with pytest.raises(ConfigurationError):
            svc.publish("alice", "alice/city", "Nantes", policy=permissive_policy("eve"))

    def test_responsible_peer_is_deterministic(self, service):
        assert service.responsible_peer("k") == service.responsible_peer("k")

    def test_unpublish(self, service):
        service.unpublish("alice", "alice/city")
        assert service.published_items() == []
        with pytest.raises(UnknownDataError):
            service.request("bob", "alice/city")

    def test_unpublish_requires_ownership(self, service):
        with pytest.raises(AccessDeniedError):
            service.unpublish("bob", "alice/city")

    def test_published_items_filter_by_owner(self, service):
        assert len(service.published_items("alice")) == 1
        assert service.published_items("bob") == []


class TestRequests:
    def test_permitted_request_returns_content_and_records_disclosure(self, service):
        decision, content = service.request("bob", "alice/city")
        assert decision.permitted
        assert content == "Nantes"
        assert len(service.ledger) == 1
        assert service.ledger.records[0].recipient == "bob"

    def test_unknown_data_raises(self, service):
        with pytest.raises(UnknownDataError):
            service.request("bob", "alice/unknown")

    def test_denied_request_returns_reasons_without_content(self, service):
        service.register_policy(restrictive_policy("alice", minimum_trust=0.95))
        decision, content = service.request("carol", "alice/city")
        assert not decision.permitted
        assert content is None
        assert len(service.ledger) == 0

    def test_request_or_raise(self, service):
        assert service.request_or_raise("bob", "alice/city") == "Nantes"
        service.register_policy(restrictive_policy("alice"))
        with pytest.raises(AccessDeniedError):
            service.request_or_raise("carol", "alice/city")

    def test_minimum_trust_uses_oracle(self, service):
        policy = PrivacyPolicy(
            owner="alice",
            default_rule=PolicyRule(audience=Audience.ANYONE, minimum_trust=0.8),
        )
        service.register_policy(policy)
        assert service.request("bob", "alice/city")[0].permitted
        assert not service.request("carol", "alice/city")[0].permitted

    def test_friendship_oracle_feeds_audience_rules(self, service):
        policy = PrivacyPolicy(owner="alice", default_rule=PolicyRule(audience=Audience.FRIENDS))
        service.register_policy(policy)
        assert service.request("bob", "alice/city")[0].permitted
        assert not service.request("dave", "alice/city")[0].permitted

    def test_obligations_propagate_from_request(self, service):
        policy = PrivacyPolicy(
            owner="alice",
            default_rule=PolicyRule(
                audience=Audience.ANYONE, obligations={Obligation.NOTIFY_OWNER}
            ),
        )
        service.register_policy(policy)
        denied, _ = service.request("dave", "alice/city")
        assert not denied.permitted
        granted, _ = service.request(
            "dave", "alice/city", accepted_obligations=(Obligation.NOTIFY_OWNER,)
        )
        assert granted.permitted

    def test_retention_recorded_in_ledger(self, service):
        service.register_policy(
            PrivacyPolicy(
                owner="alice",
                default_rule=PolicyRule(audience=Audience.ANYONE, retention_time=9),
            )
        )
        service.request("dave", "alice/city")
        assert service.ledger.records[-1].retention_time == 9


class TestAuditAndBreaches:
    def test_audit_log_grows_with_requests(self, service):
        service.request("bob", "alice/city")
        service.request("dave", "alice/city", purpose=Purpose.COMMERCIAL)
        assert len(service.audit_log) == 2

    def test_denial_rate_and_reasons(self, service):
        service.register_policy(restrictive_policy("alice", minimum_trust=0.99))
        service.request("carol", "alice/city")
        service.request("bob", "alice/city")
        assert 0.0 < service.denial_rate() <= 1.0
        assert "insufficient-trust" in service.denial_reasons()

    def test_record_breach_lowers_compliance(self, service):
        service.record_breach("alice", "eve", "alice/city")
        assert service.ledger.compliance_rate() < 1.0

    def test_clock_advances_with_tick(self, service):
        service.tick(5)
        assert service.clock == 5
        with pytest.raises(ConfigurationError):
            service.tick(-1)

"""Unit tests for access-term negotiation."""

import pytest

from repro.errors import ConfigurationError
from repro.privacy.negotiation import NegotiationEngine, Proposal
from repro.privacy.policy import (
    Audience,
    Obligation,
    PolicyRule,
    PrivacyPolicy,
)
from repro.privacy.purposes import Operation, Purpose


def make_policy(**rule_kwargs) -> PrivacyPolicy:
    defaults = dict(
        audience=Audience.ANYONE,
        operations={Operation.READ},
        purposes={Purpose.SOCIAL_INTERACTION},
    )
    defaults.update(rule_kwargs)
    return PrivacyPolicy(owner="alice", default_rule=PolicyRule(**defaults))


def make_proposal(**overrides) -> Proposal:
    defaults = dict(
        requester="bob",
        owner="alice",
        data_id="alice/photo",
        operation=Operation.READ,
        purpose=Purpose.SOCIAL_INTERACTION,
        requester_trust=0.8,
        is_friend=True,
    )
    defaults.update(overrides)
    return Proposal(**defaults)


def test_immediate_agreement():
    outcome = NegotiationEngine().negotiate(make_proposal(), make_policy())
    assert outcome.agreed
    assert outcome.rounds == 1


def test_concedes_missing_obligations():
    policy = make_policy(obligations={Obligation.NO_REDISTRIBUTION})
    outcome = NegotiationEngine().negotiate(make_proposal(), policy)
    assert outcome.agreed
    assert outcome.rounds == 2
    assert Obligation.NO_REDISTRIBUTION in outcome.final_proposal.accepted_obligations


def test_concedes_purpose():
    policy = make_policy(purposes={Purpose.SOCIAL_INTERACTION})
    outcome = NegotiationEngine().negotiate(make_proposal(purpose=Purpose.COMMERCIAL), policy)
    assert outcome.agreed
    assert outcome.final_proposal.purpose is Purpose.SOCIAL_INTERACTION


def test_concedes_operation():
    policy = make_policy(operations={Operation.READ})
    outcome = NegotiationEngine().negotiate(make_proposal(operation=Operation.DISCLOSE), policy)
    assert outcome.agreed
    assert outcome.final_proposal.operation is Operation.READ


def test_non_negotiable_denial_fails_fast():
    policy = make_policy(audience=Audience.NOBODY)
    outcome = NegotiationEngine().negotiate(make_proposal(), policy)
    assert not outcome.agreed
    assert outcome.rounds == 1


def test_insufficient_trust_cannot_be_negotiated():
    policy = make_policy(minimum_trust=0.99)
    outcome = NegotiationEngine().negotiate(make_proposal(requester_trust=0.2), policy)
    assert not outcome.agreed


def test_missing_rule_fails():
    policy = PrivacyPolicy(owner="alice")
    outcome = NegotiationEngine().negotiate(make_proposal(), policy)
    assert not outcome.agreed


def test_trace_records_every_round():
    policy = make_policy(
        obligations={Obligation.NO_REDISTRIBUTION},
        purposes={Purpose.SOCIAL_INTERACTION},
    )
    outcome = NegotiationEngine().negotiate(make_proposal(purpose=Purpose.COMMERCIAL), policy)
    assert outcome.agreed
    assert len(outcome.trace) == outcome.rounds


def test_max_rounds_validated():
    with pytest.raises(ConfigurationError):
        NegotiationEngine(max_rounds=0)

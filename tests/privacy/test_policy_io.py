"""Unit tests for policy-document serialization."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.privacy.policy import (
    Audience,
    Obligation,
    PolicyRule,
    PrivacyPolicy,
    permissive_policy,
    restrictive_policy,
)
from repro.privacy.policy_io import (
    POLICY_DOCUMENT_VERSION,
    policy_from_dict,
    policy_from_json,
    policy_to_dict,
    policy_to_json,
    rule_from_dict,
    rule_to_dict,
)
from repro.privacy.purposes import Operation, Purpose


def sample_policy() -> PrivacyPolicy:
    policy = restrictive_policy("alice", minimum_trust=0.7)
    policy.set_rule(
        "alice/photo",
        PolicyRule(
            authorized_users={"bob"},
            audience=Audience.COMMUNITY,
            operations={Operation.READ, Operation.DISCLOSE},
            purposes={Purpose.SOCIAL_INTERACTION, Purpose.RECOMMENDATION},
            minimum_trust=0.2,
            retention_time=30,
            obligations={Obligation.NOTIFY_OWNER},
        ),
    )
    return policy


class TestRuleRoundTrip:
    def test_round_trip_preserves_every_field(self):
        rule = sample_policy().rules["alice/photo"]
        restored = rule_from_dict(rule_to_dict(rule))
        assert restored == rule

    def test_defaults_fill_missing_fields(self):
        rule = rule_from_dict({})
        assert rule.audience is Audience.FRIENDS
        assert rule.operations == {Operation.READ}

    def test_invalid_enumeration_rejected(self):
        with pytest.raises(ConfigurationError):
            rule_from_dict({"operations": ["teleport"]})


class TestPolicyRoundTrip:
    def test_dict_round_trip(self):
        policy = sample_policy()
        restored = policy_from_dict(policy_to_dict(policy))
        assert restored.owner == policy.owner
        assert restored.rules == policy.rules
        assert restored.default_rule == policy.default_rule

    def test_json_round_trip_evaluates_identically(self):
        policy = sample_policy()
        restored = policy_from_json(policy_to_json(policy))
        from repro.privacy.policy import AccessRequest

        request = AccessRequest(
            requester="bob",
            owner="alice",
            data_id="alice/photo",
            operation=Operation.READ,
            purpose=Purpose.SOCIAL_INTERACTION,
            requester_trust=0.9,
            is_friend=False,
            same_community=True,
            accepted_obligations=frozenset({Obligation.NOTIFY_OWNER}),
        )
        assert policy.evaluate(request).permitted == restored.evaluate(request).permitted

    def test_document_carries_version(self):
        document = policy_to_dict(permissive_policy("alice"))
        assert document["version"] == POLICY_DOCUMENT_VERSION

    def test_unknown_version_rejected(self):
        document = policy_to_dict(permissive_policy("alice"))
        document["version"] = "other/9.9"
        with pytest.raises(ConfigurationError):
            policy_from_dict(document)

    def test_missing_owner_rejected(self):
        with pytest.raises(ConfigurationError):
            policy_from_dict({"version": POLICY_DOCUMENT_VERSION})

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            policy_from_json("{not json")
        with pytest.raises(ConfigurationError):
            policy_from_json(json.dumps([1, 2, 3]))

    def test_policy_without_default_rule(self):
        policy = PrivacyPolicy(owner="alice")
        restored = policy_from_dict(policy_to_dict(policy))
        assert restored.default_rule is None
        assert restored.rules == {}

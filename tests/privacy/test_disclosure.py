"""Unit tests for the disclosure ledger."""

import pytest

from repro.errors import ConfigurationError
from repro.privacy.disclosure import DisclosureLedger, DisclosureRecord
from repro.privacy.purposes import Purpose


def record(
    time=0,
    owner="alice",
    recipient="bob",
    data_id="alice/photo",
    sensitivity=0.5,
    purpose=Purpose.SOCIAL_INTERACTION,
    policy_compliant=True,
    retention_time=None,
) -> DisclosureRecord:
    return DisclosureRecord(
        time=time,
        owner=owner,
        recipient=recipient,
        data_id=data_id,
        sensitivity=sensitivity,
        purpose=purpose,
        policy_compliant=policy_compliant,
        retention_time=retention_time,
    )


def test_sensitivity_validated():
    with pytest.raises(ConfigurationError):
        record(sensitivity=1.5)


def test_queries_by_owner_and_recipient():
    ledger = DisclosureLedger()
    ledger.record(record(owner="alice", recipient="bob"))
    ledger.record(record(owner="carol", recipient="bob"))
    assert len(ledger) == 2
    assert len(ledger.by_owner("alice")) == 1
    assert len(ledger.by_recipient("bob")) == 2
    assert ledger.owners() == ["alice", "carol"]


def test_violations_and_compliance_rate():
    ledger = DisclosureLedger()
    ledger.record(record(policy_compliant=True))
    ledger.record(record(policy_compliant=False))
    assert len(ledger.violations()) == 1
    assert ledger.compliance_rate() == 0.5
    assert DisclosureLedger().compliance_rate() == 1.0


def test_exposure_is_sensitivity_weighted():
    ledger = DisclosureLedger()
    ledger.record(record(sensitivity=0.2))
    ledger.record(record(sensitivity=0.7))
    assert ledger.exposure("alice") == pytest.approx(0.9)
    assert ledger.exposure("nobody") == 0.0


def test_retention_expiry():
    ledger = DisclosureLedger()
    ledger.record(record(time=0, retention_time=5))
    ledger.record(record(time=0, retention_time=None))
    assert len(ledger.active_records(now=3)) == 2
    assert len(ledger.active_records(now=10)) == 1
    assert len(ledger.expired_records(now=10)) == 1


def test_exposure_honours_retention():
    ledger = DisclosureLedger()
    ledger.record(record(time=0, sensitivity=0.8, retention_time=5))
    assert ledger.exposure("alice", now=2) == pytest.approx(0.8)
    assert ledger.exposure("alice", now=20) == 0.0


def test_distinct_recipients():
    ledger = DisclosureLedger()
    ledger.record(record(recipient="bob"))
    ledger.record(record(recipient="bob"))
    ledger.record(record(recipient="carol"))
    assert ledger.distinct_recipients("alice") == 2


def test_purpose_histogram():
    ledger = DisclosureLedger()
    ledger.record(record(purpose=Purpose.COMMERCIAL))
    ledger.record(record(purpose=Purpose.COMMERCIAL))
    ledger.record(record(purpose=Purpose.SOCIAL_INTERACTION, owner="carol"))
    histogram = ledger.purpose_histogram()
    assert histogram[Purpose.COMMERCIAL] == 2
    assert ledger.purpose_histogram(owner="carol") == {Purpose.SOCIAL_INTERACTION: 1}

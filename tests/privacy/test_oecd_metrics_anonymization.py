"""Unit tests for OECD compliance, privacy metrics and anonymization."""

import pytest

from repro.errors import ConfigurationError
from repro.privacy.anonymization import (
    PseudonymManager,
    anonymize_feedback,
    generalize_age,
    k_anonymous_groups,
)
from repro.privacy.disclosure import DisclosureLedger, DisclosureRecord
from repro.privacy.metrics import (
    exposure_level,
    policy_respect_rate,
    population_privacy_satisfaction,
    privacy_guarantee_level,
    privacy_satisfaction,
)
from repro.privacy.oecd import OECD_PRINCIPLES, OecdPrinciple, check_compliance
from repro.privacy.policy import permissive_policy
from repro.privacy.priserv import PriServService
from repro.privacy.purposes import Purpose
from tests.conftest import make_feedback


def make_record(sensitivity=0.5, compliant=True, purpose=Purpose.SOCIAL_INTERACTION, owner="alice"):
    return DisclosureRecord(
        time=0,
        owner=owner,
        recipient="bob",
        data_id=f"{owner}/x",
        sensitivity=sensitivity,
        purpose=purpose,
        policy_compliant=compliant,
    )


class TestPrivacyMetrics:
    def test_exposure_level_normalizes_and_saturates(self):
        ledger = DisclosureLedger()
        for _ in range(10):
            ledger.record(make_record(sensitivity=1.0))
        assert exposure_level(ledger, "alice", reference_exposure=20.0) == 0.5
        assert exposure_level(ledger, "alice", reference_exposure=5.0) == 1.0
        assert exposure_level(ledger, "nobody") == 0.0

    def test_exposure_level_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            exposure_level(DisclosureLedger(), "alice", reference_exposure=0.0)

    def test_policy_respect_rate(self):
        ledger = DisclosureLedger()
        ledger.record(make_record(compliant=True))
        ledger.record(make_record(compliant=False))
        assert policy_respect_rate(ledger) == 0.5
        assert policy_respect_rate(ledger, "nobody") == 1.0

    def test_guarantee_decreases_with_sharing_and_requirement(self):
        high = privacy_guarantee_level(0.2, 0.3)
        low = privacy_guarantee_level(1.0, 0.9)
        assert high > low
        assert privacy_guarantee_level(0.0, 1.0) == 1.0

    def test_anonymity_recovers_guarantee(self):
        assert privacy_guarantee_level(1.0, 0.9, anonymous_feedback=True) > (
            privacy_guarantee_level(1.0, 0.9)
        )

    def test_privacy_satisfaction_indifferent_user(self):
        assert privacy_satisfaction(exposure=1.0, respect_rate=0.0, privacy_concern=0.0) == 1.0

    def test_privacy_satisfaction_concerned_user(self):
        bad = privacy_satisfaction(exposure=1.0, respect_rate=0.5, privacy_concern=1.0)
        good = privacy_satisfaction(exposure=0.0, respect_rate=1.0, privacy_concern=1.0)
        assert good == 1.0
        assert bad < 0.5

    def test_population_satisfaction_defaults_to_one(self):
        assert population_privacy_satisfaction(DisclosureLedger(), {}) == 1.0
        ledger = DisclosureLedger()
        ledger.record(make_record(sensitivity=1.0, compliant=False))
        value = population_privacy_satisfaction(ledger, {"alice": 0.9, "carol": 0.9})
        assert 0.0 < value < 1.0


class TestOecdCompliance:
    def build_service(self, *, breaches=0) -> PriServService:
        service = PriServService(peer_ids=["alice", "bob"], trust_oracle=lambda p: 0.9)
        service.register_policy(permissive_policy("alice"))
        service.publish("alice", "alice/city", "Nantes", sensitivity=0.2)
        service.request("bob", "alice/city")
        for _ in range(breaches):
            service.record_breach("alice", "eve", "alice/city")
        return service

    def test_report_covers_every_principle(self):
        report = check_compliance(self.build_service())
        assert set(report.scores) == set(OECD_PRINCIPLES)
        assert all(0.0 <= score <= 1.0 for score in report.scores.values())
        assert 0.0 <= report.overall <= 1.0
        assert len(report.as_rows()) == 8

    def test_breaches_degrade_security_safeguards(self):
        clean = check_compliance(self.build_service())
        breached = check_compliance(self.build_service(breaches=5))
        assert (
            breached.scores[OecdPrinciple.SECURITY_SAFEGUARDS]
            < clean.scores[OecdPrinciple.SECURITY_SAFEGUARDS]
        )
        assert breached.overall < clean.overall

    def test_weakest_principle_identified(self):
        report = check_compliance(self.build_service(breaches=10))
        assert report.weakest() in set(OECD_PRINCIPLES)

    def test_empty_service_is_compliant(self):
        service = PriServService(peer_ids=["alice"])
        assert check_compliance(service).overall == pytest.approx(1.0)


class TestAnonymization:
    def test_pseudonyms_are_stable_within_epoch(self):
        manager = PseudonymManager()
        assert manager.pseudonym("alice") == manager.pseudonym("alice")
        assert manager.pseudonym("alice") != manager.pseudonym("bob")

    def test_resolve_reverses_mapping(self):
        manager = PseudonymManager()
        pseudonym = manager.pseudonym("alice")
        assert manager.resolve(pseudonym) == "alice"
        with pytest.raises(ConfigurationError):
            manager.resolve("p-unknown")

    def test_rotation_unlinks_epochs(self):
        manager = PseudonymManager()
        before = manager.pseudonym("alice")
        manager.rotate()
        after = manager.pseudonym("alice")
        assert before != after
        assert manager.epoch == 1

    def test_generalize_age(self):
        assert generalize_age(34) == "30-39"
        assert generalize_age(34, bucket_size=5) == "30-34"
        with pytest.raises(ConfigurationError):
            generalize_age(-1)
        with pytest.raises(ConfigurationError):
            generalize_age(30, bucket_size=0)

    def test_k_anonymous_groups(self):
        values = ["30-39", "30-39", "40-49", "30-39"]
        groups = k_anonymous_groups(values, k=2)
        assert list(groups) == ["30-39"]
        assert groups["30-39"] == [0, 1, 3]
        with pytest.raises(ConfigurationError):
            k_anonymous_groups(values, k=0)

    def test_anonymize_feedback_strips_raters_only(self):
        original = [make_feedback("bob", 1.0, rater="alice", transaction_id=1)]
        anonymized = anonymize_feedback(original)
        assert anonymized[0].rater is None
        assert anonymized[0].rating == 1.0
        assert anonymized[0].subject == "bob"

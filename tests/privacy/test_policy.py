"""Unit tests for P3P-inspired privacy policies."""

import pytest

from repro.errors import ConfigurationError
from repro.privacy.policy import (
    AccessDecision,
    AccessRequest,
    Audience,
    Obligation,
    PolicyRule,
    PrivacyPolicy,
    permissive_policy,
    restrictive_policy,
)
from repro.privacy.purposes import Operation, Purpose


def make_request(**overrides) -> AccessRequest:
    defaults = dict(
        requester="bob",
        owner="alice",
        data_id="alice/photo",
        operation=Operation.READ,
        purpose=Purpose.SOCIAL_INTERACTION,
        requester_trust=0.8,
        is_friend=True,
    )
    defaults.update(overrides)
    return AccessRequest(**defaults)


class TestPolicyRule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PolicyRule(minimum_trust=1.5)
        with pytest.raises(ConfigurationError):
            PolicyRule(retention_time=-1)
        with pytest.raises(ConfigurationError):
            PolicyRule(operations=set())
        with pytest.raises(ConfigurationError):
            PolicyRule(purposes=set())

    def test_friend_audience(self):
        rule = PolicyRule(audience=Audience.FRIENDS)
        assert rule.evaluate(make_request(is_friend=True)).permitted
        decision = rule.evaluate(make_request(is_friend=False))
        assert not decision.permitted
        assert "requester-not-authorized" in decision.reasons

    def test_explicit_authorized_user_overrides_audience(self):
        rule = PolicyRule(audience=Audience.NOBODY, authorized_users={"bob"})
        assert rule.evaluate(make_request(is_friend=False)).permitted

    def test_community_audience(self):
        rule = PolicyRule(audience=Audience.COMMUNITY)
        assert rule.evaluate(make_request(is_friend=False, same_community=True)).permitted
        assert not rule.evaluate(make_request(is_friend=False, same_community=False)).permitted

    def test_anyone_audience(self):
        rule = PolicyRule(audience=Audience.ANYONE)
        assert rule.evaluate(make_request(is_friend=False)).permitted

    def test_nobody_audience(self):
        rule = PolicyRule(audience=Audience.NOBODY)
        assert not rule.evaluate(make_request()).permitted

    def test_operation_restriction(self):
        rule = PolicyRule(operations={Operation.READ})
        decision = rule.evaluate(make_request(operation=Operation.DISCLOSE))
        assert not decision.permitted
        assert "operation-not-allowed" in decision.reasons

    def test_purpose_restriction(self):
        rule = PolicyRule(purposes={Purpose.SOCIAL_INTERACTION})
        decision = rule.evaluate(make_request(purpose=Purpose.COMMERCIAL))
        assert not decision.permitted
        assert "purpose-not-allowed" in decision.reasons

    def test_minimum_trust(self):
        rule = PolicyRule(minimum_trust=0.7)
        assert rule.evaluate(make_request(requester_trust=0.7)).permitted
        decision = rule.evaluate(make_request(requester_trust=0.3))
        assert "insufficient-trust" in decision.reasons

    def test_obligations_must_be_accepted(self):
        rule = PolicyRule(obligations={Obligation.NOTIFY_OWNER})
        denied = rule.evaluate(make_request())
        assert "obligations-not-accepted" in denied.reasons
        granted = rule.evaluate(
            make_request(accepted_obligations=frozenset({Obligation.NOTIFY_OWNER}))
        )
        assert granted.permitted
        assert granted.obligations == frozenset({Obligation.NOTIFY_OWNER})

    def test_multiple_denial_reasons_accumulate(self):
        rule = PolicyRule(
            audience=Audience.NOBODY,
            operations={Operation.READ},
            purposes={Purpose.SOCIAL_INTERACTION},
            minimum_trust=0.9,
        )
        decision = rule.evaluate(
            make_request(
                is_friend=False,
                operation=Operation.DELETE,
                purpose=Purpose.COMMERCIAL,
                requester_trust=0.1,
            )
        )
        assert len(decision.reasons) == 4

    def test_permit_carries_retention_time(self):
        rule = PolicyRule(retention_time=7)
        assert rule.evaluate(make_request()).retention_time == 7


class TestPrivacyPolicy:
    def test_wrong_owner_denied(self):
        policy = permissive_policy("alice")
        decision = policy.evaluate(make_request(owner="eve", data_id="eve/photo"))
        assert not decision.permitted
        assert "wrong-owner" in decision.reasons

    def test_no_rule_means_deny(self):
        policy = PrivacyPolicy(owner="alice")
        decision = policy.evaluate(make_request())
        assert not decision.permitted
        assert "no-applicable-rule" in decision.reasons

    def test_specific_rule_overrides_default(self):
        policy = permissive_policy("alice")
        policy.set_rule("alice/photo", PolicyRule(audience=Audience.NOBODY))
        assert not policy.evaluate(make_request()).permitted
        assert policy.evaluate(make_request(data_id="alice/city")).permitted

    def test_permissive_policy_allows_commercial_reads(self):
        policy = permissive_policy("alice")
        assert policy.evaluate(make_request(purpose=Purpose.COMMERCIAL, is_friend=False)).permitted

    def test_restrictive_policy_requires_trusted_friends_and_obligations(self):
        policy = restrictive_policy("alice", minimum_trust=0.6)
        denied = policy.evaluate(make_request(requester_trust=0.9))
        assert not denied.permitted  # obligations not accepted
        granted = policy.evaluate(
            make_request(
                requester_trust=0.9,
                accepted_obligations=frozenset(
                    {Obligation.DELETE_AFTER_RETENTION, Obligation.NO_REDISTRIBUTION}
                ),
            )
        )
        assert granted.permitted

    def test_strictness_ordering(self):
        assert restrictive_policy("alice").strictness() > permissive_policy("alice").strictness()

    def test_strictness_empty_policy_is_maximal(self):
        assert PrivacyPolicy(owner="alice").strictness() == 1.0


class TestAccessDecisionHelpers:
    def test_permit_and_deny_constructors(self):
        assert AccessDecision.permit().permitted
        denied = AccessDecision.deny("because")
        assert not denied.permitted
        assert denied.reasons == ("because",)

    def test_request_validates_trust(self):
        with pytest.raises(ConfigurationError):
            make_request(requester_trust=1.2)

"""Unit tests for the shared helpers in :mod:`repro._util`."""

import pytest

from repro._util import (
    clamp,
    ewma,
    mean,
    normalize_distribution,
    normalize_weights,
    pearson,
    require_positive,
    require_unit_interval,
)
from repro.errors import ConfigurationError


class TestClamp:
    def test_inside_interval_unchanged(self):
        assert clamp(0.4) == 0.4

    def test_below_clamps_to_low(self):
        assert clamp(-1.0) == 0.0

    def test_above_clamps_to_high(self):
        assert clamp(3.0) == 1.0

    def test_custom_interval(self):
        assert clamp(5.0, 1.0, 2.0) == 2.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            clamp(0.5, 1.0, 0.0)


class TestRequireUnitInterval:
    def test_accepts_bounds(self):
        assert require_unit_interval(0.0, "x") == 0.0
        assert require_unit_interval(1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            require_unit_interval(1.5, "x")
        with pytest.raises(ConfigurationError):
            require_unit_interval(-0.1, "x")

    def test_rejects_non_numbers(self):
        with pytest.raises(ConfigurationError):
            require_unit_interval("0.5", "x")

    def test_rejects_booleans(self):
        with pytest.raises(ConfigurationError):
            require_unit_interval(True, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="sharing"):
            require_unit_interval(2.0, "sharing")


class TestRequirePositive:
    def test_strict_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            require_positive(0.0, "x")

    def test_non_strict_accepts_zero(self):
        assert require_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_positive(-1.0, "x", strict=False)

    def test_returns_float(self):
        assert require_positive(3, "x") == 3.0


class TestNormalizeWeights:
    def test_normalizes_to_one(self):
        assert normalize_weights([1.0, 1.0, 2.0]) == [0.25, 0.25, 0.5]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            normalize_weights([])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            normalize_weights([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            normalize_weights([0.0, 0.0])


class TestNormalizeDistribution:
    def test_normalizes(self):
        dist = normalize_distribution({"a": 1.0, "b": 3.0})
        assert dist["a"] == pytest.approx(0.25)
        assert dist["b"] == pytest.approx(0.75)

    def test_all_zero_becomes_uniform(self):
        dist = normalize_distribution({"a": 0.0, "b": 0.0})
        assert dist == {"a": 0.5, "b": 0.5}

    def test_empty_stays_empty(self):
        assert normalize_distribution({}) == {}

    def test_rejects_negative_scores(self):
        with pytest.raises(ConfigurationError):
            normalize_distribution({"a": -1.0})


class TestEwma:
    def test_moves_towards_observation(self):
        assert ewma(0.0, 1.0, 0.25) == 0.25

    def test_alpha_one_replaces(self):
        assert ewma(0.3, 0.9, 1.0) == 0.9

    def test_alpha_zero_keeps_previous(self):
        assert ewma(0.3, 0.9, 0.0) == 0.3

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            ewma(0.3, 0.9, 1.5)


class TestMean:
    def test_simple_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_uses_default(self):
        assert mean([], default=0.7) == 0.7

    def test_accepts_generators(self):
        assert mean(x / 10 for x in range(11)) == pytest.approx(0.5)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_short_series_is_zero(self):
        assert pearson([1], [2]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson([1, 2], [1, 2, 3])

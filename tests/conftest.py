"""Shared fixtures for the test suite.

Expensive artefacts (generated graphs, full scenario runs) are session-scoped
so the many tests that only *read* them do not pay for rebuilding them.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import SystemSettings
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.simulation.transaction import Feedback
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network
from repro.socialnet.graph import SocialGraph
from repro.socialnet.user import User, standard_profile


@pytest.fixture(scope="session")
def small_graph() -> SocialGraph:
    """A 30-user Barabási–Albert graph with 20% malicious users."""
    return generate_social_network(SocialNetworkSpec(n_users=30, malicious_fraction=0.2, seed=5))


@pytest.fixture(scope="session")
def adversarial_graph() -> SocialGraph:
    """A 40-user graph with a large (40%) malicious population."""
    return generate_social_network(SocialNetworkSpec(n_users=40, malicious_fraction=0.4, seed=9))


@pytest.fixture()
def tiny_graph() -> SocialGraph:
    """A hand-built 4-user graph for precise assertions."""
    users = [
        User(
            user_id="alice",
            profile=standard_profile("alice"),
            honesty=0.95,
            competence=0.9,
            activity=0.8,
            privacy_concern=0.3,
        ),
        User(
            user_id="bob",
            profile=standard_profile("bob"),
            honesty=0.9,
            competence=0.7,
            activity=0.6,
            privacy_concern=0.6,
        ),
        User(
            user_id="carol",
            profile=standard_profile("carol"),
            honesty=0.85,
            competence=0.8,
            activity=0.5,
            privacy_concern=0.9,
        ),
        User(
            user_id="mallory",
            profile=standard_profile("mallory"),
            honesty=0.1,
            competence=0.6,
            activity=0.9,
            privacy_concern=0.1,
        ),
    ]
    graph = SocialGraph(users)
    graph.add_relationship("alice", "bob")
    graph.add_relationship("alice", "carol")
    graph.add_relationship("bob", "carol")
    graph.add_relationship("carol", "mallory")
    graph.add_relationship("alice", "mallory")
    return graph


@pytest.fixture(scope="session")
def default_scenario_result():
    """One full end-to-end scenario shared by read-only integration tests."""
    config = ScenarioConfig(
        n_users=35,
        rounds=15,
        seed=3,
        malicious_fraction=0.25,
        settings=SystemSettings(reputation_mechanism="eigentrust"),
    )
    return Scenario(config).run()


def make_feedback(
    subject: str,
    rating: float,
    *,
    rater: str = "rater",
    transaction_id: int = 1,
    time: int = 0,
    truthful: bool = True,
) -> Feedback:
    """Concise feedback factory used across reputation tests."""
    return Feedback(
        transaction_id=transaction_id,
        time=time,
        subject=subject,
        rating=rating,
        rater=rater,
        truthful=truthful,
    )


@pytest.fixture()
def feedback_factory():
    """Factory fixture producing feedback with auto-incrementing ids."""
    counter = {"next": 0}

    def factory(
        subject: str, rating: float, *, rater: str = "rater", time: int = 0, truthful: bool = True
    ) -> Feedback:
        counter["next"] += 1
        return make_feedback(
            subject,
            rating,
            rater=rater,
            transaction_id=counter["next"],
            time=time,
            truthful=truthful,
        )

    return factory


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)

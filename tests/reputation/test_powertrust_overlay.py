"""Unit tests for PowerTrust and the trust overlay network."""

import pytest

from repro.errors import ConfigurationError
from repro.reputation.gathering import FeedbackStore
from repro.reputation.overlay import TrustOverlayNetwork
from repro.reputation.powertrust import PowerTrust
from tests.conftest import make_feedback


def populate(system_or_store, tid_start: int = 0) -> int:
    """Two honest peers rated well by everyone, one bad peer rated badly."""
    tid = tid_start
    raters = ["a", "b", "c", "d"]
    for _ in range(4):
        for rater in raters:
            for subject, rating in (("good1", 1.0), ("good2", 1.0), ("bad", 0.0)):
                if rater == subject:
                    continue
                tid += 1
                feedback = make_feedback(subject, rating, rater=rater, transaction_id=tid)
                if hasattr(system_or_store, "record_feedback"):
                    system_or_store.record_feedback(feedback)
                else:
                    system_or_store.add(feedback)
    return tid


class TestOverlay:
    def test_builds_weighted_digraph(self):
        store = FeedbackStore()
        populate(store)
        overlay = TrustOverlayNetwork(store).build()
        assert overlay.has_edge("a", "good1")
        assert overlay["a"]["good1"]["weight"] == 1.0
        assert overlay["a"]["bad"]["weight"] == 0.0
        assert overlay["a"]["good1"]["reports"] == 4

    def test_in_degree_centrality_nonempty(self):
        store = FeedbackStore()
        populate(store)
        centrality = TrustOverlayNetwork(store).in_degree_centrality()
        assert centrality["good1"] > 0.0

    def test_empty_store_gives_empty_centrality(self):
        assert TrustOverlayNetwork(FeedbackStore()).in_degree_centrality() == {}

    def test_power_node_selection_prefers_high_scores(self):
        store = FeedbackStore()
        populate(store)
        overlay = TrustOverlayNetwork(store)
        scores = {"good1": 0.9, "good2": 0.8, "bad": 0.1, "a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5}
        assert overlay.select_power_nodes(scores, 2) == ["good1", "good2"]

    def test_power_node_selection_zero_or_negative(self):
        overlay = TrustOverlayNetwork(FeedbackStore())
        assert overlay.select_power_nodes({"a": 1.0}, 0) == []


class TestPowerTrust:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            PowerTrust(n_power_nodes=0)
        with pytest.raises(ConfigurationError):
            PowerTrust(max_iterations=0)
        with pytest.raises(ConfigurationError):
            PowerTrust(tolerance=-1.0)

    def test_empty_store(self):
        assert PowerTrust().compute_scores() == {}

    def test_good_peers_outrank_bad_peer(self):
        system = PowerTrust(n_power_nodes=2)
        populate(system)
        scores = system.scores()
        assert scores["good1"] > scores["bad"]
        assert scores["good2"] > scores["bad"]

    def test_power_nodes_are_reputable(self):
        system = PowerTrust(n_power_nodes=2)
        populate(system)
        system.refresh()
        assert set(system.power_nodes) <= {"good1", "good2", "a", "b", "c", "d"}
        assert "bad" not in system.power_nodes

    def test_scores_in_unit_interval(self):
        system = PowerTrust()
        populate(system)
        assert all(0.0 <= score <= 1.0 for score in system.scores().values())

    def test_high_information_requirement(self):
        assert PowerTrust.information_requirement > 0.5


class TestCentralityMemo:
    def test_centrality_cached_between_calls(self):
        store = FeedbackStore()
        populate(store)
        overlay = TrustOverlayNetwork(store)
        assert overlay.in_degree_centrality() is overlay.in_degree_centrality()

    def test_new_feedback_invalidates_memo(self):
        store = FeedbackStore()
        populate(store)
        overlay = TrustOverlayNetwork(store)
        before = overlay.in_degree_centrality()
        store.add(make_feedback(subject="newcomer", rater="a", rating=1.0, transaction_id=999))
        after = overlay.in_degree_centrality()
        assert "newcomer" in after and "newcomer" not in before

    def test_memo_does_not_survive_store_clear(self):
        """Regression: a count-keyed memo returned pre-reset centrality
        after clear() once the store grew back to the same size."""
        store = FeedbackStore()
        populate(store)
        overlay = TrustOverlayNetwork(store)
        stale = overlay.in_degree_centrality()
        count_before = len(store)
        store.clear()
        tid = 0
        for _ in range(count_before // 2):
            for subject in ("fresh1", "fresh2"):
                tid += 1
                store.add(make_feedback(subject=subject, rater="z", rating=1.0, transaction_id=tid))
        fresh = overlay.in_degree_centrality()
        assert fresh is not stale
        assert set(fresh) == {"fresh1", "fresh2", "z"}

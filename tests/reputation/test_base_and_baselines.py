"""Unit tests for the ReputationSystem base class and the two baselines."""

import pytest

from repro.reputation.average import SimpleAverageReputation
from repro.reputation.beta import BetaReputation
from repro.errors import ConfigurationError
from tests.conftest import make_feedback


class TestBaseBehaviour:
    def test_unknown_peer_gets_default_score(self):
        system = SimpleAverageReputation(default_score=0.4)
        assert system.score("stranger") == 0.4

    def test_score_refreshes_lazily_after_new_evidence(self):
        system = SimpleAverageReputation()
        system.record_feedback(make_feedback("bob", 1.0, transaction_id=1))
        assert system.score("bob") == 1.0
        system.record_feedback(make_feedback("bob", 0.0, transaction_id=2))
        assert system.score("bob") == 0.5

    def test_ranking_sorted_by_score_then_name(self):
        system = SimpleAverageReputation()
        system.record_feedback(make_feedback("bob", 1.0, transaction_id=1))
        system.record_feedback(make_feedback("carol", 0.0, transaction_id=2))
        system.record_feedback(make_feedback("dave", 1.0, transaction_id=3))
        assert system.ranking() == ["bob", "dave", "carol"]

    def test_known_peers_includes_raters(self):
        system = SimpleAverageReputation()
        system.record_feedback(make_feedback("bob", 1.0, rater="alice"))
        assert system.known_peers() == ["alice", "bob"]

    def test_reset_clears_everything(self):
        system = SimpleAverageReputation()
        system.record_feedback(make_feedback("bob", 1.0))
        system.reset()
        assert system.evidence_count == 0
        assert system.score("bob") == system.default_score

    def test_refresh_returns_copy(self):
        system = SimpleAverageReputation()
        system.record_feedback(make_feedback("bob", 1.0))
        scores = system.refresh()
        scores["bob"] = 0.0
        assert system.score("bob") == 1.0


class TestSimpleAverage:
    def test_average_of_ratings(self):
        system = SimpleAverageReputation()
        for index, rating in enumerate([1.0, 1.0, 0.0, 1.0]):
            system.record_feedback(make_feedback("bob", rating, transaction_id=index))
        assert system.score("bob") == pytest.approx(0.75)

    def test_ignores_rater_identity(self):
        identified = SimpleAverageReputation()
        anonymous = SimpleAverageReputation()
        for index, rating in enumerate([1.0, 0.0, 1.0]):
            identified.record_feedback(
                make_feedback("bob", rating, rater=f"r{index}", transaction_id=index)
            )
            anonymous.record_feedback(
                make_feedback("bob", rating, rater=None, transaction_id=index)
            )
        assert identified.score("bob") == anonymous.score("bob")

    def test_low_information_requirement(self):
        assert SimpleAverageReputation.information_requirement < 0.5


class TestBetaReputation:
    def test_prior_pulls_towards_half(self):
        system = BetaReputation()
        system.record_feedback(make_feedback("bob", 1.0, transaction_id=1))
        # One positive report: (1+1)/(1+1+1) = 2/3, not 1.0.
        assert system.score("bob") == pytest.approx(2 / 3)

    def test_converges_with_evidence(self):
        system = BetaReputation()
        for index in range(50):
            system.record_feedback(make_feedback("bob", 1.0, transaction_id=index))
        assert system.score("bob") > 0.95

    def test_negative_evidence_lowers_score(self):
        system = BetaReputation()
        for index in range(10):
            system.record_feedback(make_feedback("bob", 0.0, transaction_id=index))
        assert system.score("bob") < 0.2

    def test_forgetting_tracks_traitors(self):
        remembering = BetaReputation(forgetting=1.0)
        forgetting = BetaReputation(forgetting=0.7)
        for system in (remembering, forgetting):
            for index in range(20):
                system.record_feedback(
                    make_feedback("traitor", 1.0, transaction_id=index, time=index)
                )
            for index in range(20, 30):
                system.record_feedback(
                    make_feedback("traitor", 0.0, transaction_id=index, time=index)
                )
        assert forgetting.score("traitor") < remembering.score("traitor")

    def test_invalid_forgetting_rejected(self):
        with pytest.raises(ConfigurationError):
            BetaReputation(forgetting=1.5)

"""Unit tests for the anonymizing feedback wrapper."""

import pytest

from repro.errors import ConfigurationError
from repro.reputation.anonymous import AnonymousFeedbackReputation
from repro.reputation.average import SimpleAverageReputation
from repro.reputation.beta import BetaReputation
from repro.reputation.eigentrust import EigenTrust
from tests.conftest import make_feedback


def test_strips_rater_identity():
    wrapper = AnonymousFeedbackReputation(SimpleAverageReputation(), seed=1)
    wrapper.record_feedback(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
    stored = wrapper.inner.store.about("bob")[0]
    assert stored.rater is None
    assert wrapper.anonymized_reports == 1


def test_identity_can_be_kept():
    wrapper = AnonymousFeedbackReputation(SimpleAverageReputation(), strip_identity=False, seed=1)
    wrapper.record_feedback(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
    assert wrapper.inner.store.about("bob")[0].rater == "alice"
    assert wrapper.anonymized_reports == 0


def test_epsilon_one_preserves_ratings():
    wrapper = AnonymousFeedbackReputation(BetaReputation(), epsilon=1.0, seed=2)
    for index in range(20):
        wrapper.record_feedback(make_feedback("bob", 1.0, transaction_id=index))
    assert wrapper.perturbed_reports == 0
    assert wrapper.score("bob") > 0.9


def test_randomized_response_perturbs_some_reports():
    wrapper = AnonymousFeedbackReputation(BetaReputation(), epsilon=0.2, seed=3)
    for index in range(100):
        wrapper.record_feedback(make_feedback("bob", 1.0, transaction_id=index))
    assert wrapper.perturbed_reports > 0
    # The score moves towards 0.5 compared with the unperturbed channel.
    assert 0.4 < wrapper.score("bob") < 0.95


def test_information_requirement_lower_than_inner():
    inner = EigenTrust()
    wrapper = AnonymousFeedbackReputation(inner)
    assert wrapper.information_requirement < inner.information_requirement


def test_scores_delegate_to_inner():
    wrapper = AnonymousFeedbackReputation(SimpleAverageReputation(), seed=4)
    wrapper.record_feedback(make_feedback("bob", 1.0, transaction_id=1))
    assert wrapper.scores() == wrapper.inner.scores()


def test_reset_clears_both_layers():
    wrapper = AnonymousFeedbackReputation(SimpleAverageReputation(), seed=5)
    wrapper.record_feedback(make_feedback("bob", 1.0, transaction_id=1))
    wrapper.reset()
    assert wrapper.evidence_count == 0
    assert wrapper.inner.evidence_count == 0
    assert wrapper.anonymized_reports == 0


def test_invalid_epsilon_rejected():
    with pytest.raises(ConfigurationError):
        AnonymousFeedbackReputation(SimpleAverageReputation(), epsilon=1.2)

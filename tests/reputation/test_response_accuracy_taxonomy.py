"""Unit tests for response policies, accuracy measures and the taxonomy."""

import random
from typing import ClassVar

import pytest

from repro.errors import ConfigurationError
from repro.reputation import REPUTATION_FACTORIES, make_reputation_system
from repro.reputation.accuracy import (
    classification_accuracy,
    mean_absolute_error,
    pairwise_ranking_accuracy,
    reputation_power,
)
from repro.reputation.response import (
    ProbabilisticSelection,
    SelectBest,
    ThresholdBan,
)
from repro.reputation.taxonomy import SYSTEM_TAXONOMY, taxonomy_for


SCORES = {"good": 0.9, "ok": 0.6, "bad": 0.2}


class TestSelectBest:
    def test_picks_highest_score(self):
        assert SelectBest().select(["good", "ok", "bad"], SCORES) == "good"

    def test_tie_broken_by_name(self):
        assert SelectBest().select(["b", "a"], {"a": 0.5, "b": 0.5}) == "b"

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectBest().select([], SCORES)


class TestProbabilisticSelection:
    def test_prefers_reputable_candidates_statistically(self):
        policy = ProbabilisticSelection(floor=0.01)
        rng = random.Random(1)
        picks = [policy.select(["good", "bad"], SCORES, rng) for _ in range(500)]
        assert picks.count("good") > picks.count("bad")

    def test_floor_keeps_everyone_selectable(self):
        policy = ProbabilisticSelection(floor=0.5)
        rng = random.Random(2)
        picks = {policy.select(["good", "bad"], SCORES, rng) for _ in range(200)}
        assert picks == {"good", "bad"}

    def test_zero_scores_fall_back_to_uniform(self):
        policy = ProbabilisticSelection(floor=0.0)
        rng = random.Random(3)
        pick = policy.select(["a", "b"], {"a": 0.0, "b": 0.0}, rng)
        assert pick in {"a", "b"}


class TestThresholdBan:
    def test_bans_below_threshold(self):
        policy = ThresholdBan(threshold=0.5)
        assert policy.acceptable(["good", "ok", "bad"], SCORES) == ["good", "ok"]
        assert policy.select(["good", "ok", "bad"], SCORES) == "good"

    def test_all_banned_falls_back_to_least_bad(self):
        policy = ThresholdBan(threshold=0.95)
        assert policy.select(["ok", "bad"], SCORES) == "ok"


class TestAccuracyMeasures:
    GROUND_TRUTH: ClassVar[dict[str, float]] = {"good": 0.9, "ok": 0.8, "bad": 0.1}

    def test_perfect_ranking(self):
        assert pairwise_ranking_accuracy(SCORES, self.GROUND_TRUTH) == 1.0

    def test_inverted_ranking(self):
        inverted = {"good": 0.1, "ok": 0.2, "bad": 0.9}
        assert pairwise_ranking_accuracy(inverted, self.GROUND_TRUTH) == 0.0

    def test_ties_count_half(self):
        flat = {"good": 0.5, "ok": 0.5, "bad": 0.5}
        assert pairwise_ranking_accuracy(flat, self.GROUND_TRUTH) == 0.5

    def test_single_class_returns_chance(self):
        assert pairwise_ranking_accuracy({"good": 0.9}, {"good": 0.9}) == 0.5

    def test_classification_accuracy(self):
        assert classification_accuracy(SCORES, self.GROUND_TRUTH) == 1.0
        assert classification_accuracy(
            {"good": 0.2, "ok": 0.2, "bad": 0.2}, self.GROUND_TRUTH
        ) == pytest.approx(1 / 3)

    def test_mean_absolute_error(self):
        assert mean_absolute_error(self.GROUND_TRUTH, self.GROUND_TRUTH) == 0.0
        assert mean_absolute_error({}, self.GROUND_TRUTH) == 1.0

    def test_reputation_power_bounds(self):
        assert reputation_power(SCORES, self.GROUND_TRUTH) > 0.7
        assert reputation_power({}, self.GROUND_TRUTH) <= 0.25
        assert reputation_power({}, {}) == 0.0

    def test_reputation_power_penalizes_low_coverage(self):
        full = reputation_power(SCORES, self.GROUND_TRUTH)
        partial = reputation_power({"good": 0.9, "bad": 0.1}, self.GROUND_TRUTH)
        assert partial < full


class TestRegistryAndTaxonomy:
    def test_factory_creates_every_registered_mechanism(self):
        for name in REPUTATION_FACTORIES:
            system = make_reputation_system(name)
            assert system.name == name

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            make_reputation_system("pagerank-of-trust")

    def test_taxonomy_covers_every_factory_mechanism(self):
        for name in REPUTATION_FACTORIES:
            assert name in SYSTEM_TAXONOMY

    def test_taxonomy_lookup(self):
        record = taxonomy_for("eigentrust")
        assert record.identity_required
        assert record.collusion_resistant

    def test_taxonomy_unknown_name(self):
        with pytest.raises(ValueError):
            taxonomy_for("unknown")

    def test_identity_free_mechanisms_require_less_information(self):
        for name, record in SYSTEM_TAXONOMY.items():
            if name in REPUTATION_FACTORIES and not record.identity_required:
                assert REPUTATION_FACTORIES[name]().information_requirement <= 0.5

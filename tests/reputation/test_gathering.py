"""Unit tests for the feedback store and local-trust builder."""

import pytest

from repro.reputation.gathering import FeedbackStore, LocalTrustBuilder
from tests.conftest import make_feedback


class TestFeedbackStore:
    def test_add_and_query(self):
        store = FeedbackStore()
        store.add(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
        store.add(make_feedback("bob", 0.0, rater="carol", transaction_id=2))
        assert len(store) == 2
        assert store.subjects() == ["bob"]
        assert set(store.raters()) == {"alice", "carol"}
        assert len(store.about("bob")) == 2
        assert len(store.by("alice")) == 1

    def test_participants_include_both_sides(self):
        store = FeedbackStore()
        store.add(make_feedback("bob", 1.0, rater="alice"))
        assert store.participants() == {"alice", "bob"}

    def test_anonymous_feedback_has_no_rater_index(self):
        store = FeedbackStore()
        store.add(make_feedback("bob", 1.0, rater=None))
        assert store.raters() == []
        assert store.anonymous_fraction() == 1.0

    def test_anonymous_fraction_mixed(self):
        store = FeedbackStore()
        store.add(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
        store.add(make_feedback("bob", 1.0, rater=None, transaction_id=2))
        assert store.anonymous_fraction() == 0.5

    def test_max_per_subject_evicts_oldest(self):
        store = FeedbackStore(max_per_subject=2)
        for index in range(4):
            store.add(make_feedback("bob", 1.0, rater=f"r{index}", transaction_id=index))
        assert len(store.about("bob")) == 2
        remaining_raters = {feedback.rater for feedback in store.about("bob")}
        assert remaining_raters == {"r2", "r3"}

    def test_clear(self):
        store = FeedbackStore()
        store.add(make_feedback("bob", 1.0))
        store.clear()
        assert len(store) == 0
        assert store.subjects() == []

    def test_sorted_participants_tracks_additions_and_clear(self):
        store = FeedbackStore()
        store.add(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
        assert store.sorted_participants() == ["alice", "bob"]
        store.add(make_feedback("dave", 1.0, rater="carol", transaction_id=2))
        assert store.sorted_participants() == ["alice", "bob", "carol", "dave"]
        store.clear()
        assert store.sorted_participants() == []

    def test_sorted_participants_readmits_rater_returning_after_eviction(self):
        # Regression: R's only report is evicted (history rewrite drops R
        # from the participant set); when R rates again *without* causing
        # another eviction, the cached sorted view must re-admit R.
        store = FeedbackStore(max_per_subject=2)
        store.add(make_feedback("s1", 1.0, rater="R", transaction_id=1))
        for index in range(2, 4):
            store.add(make_feedback("s1", 1.0, rater=f"x{index}", transaction_id=index))
        assert store.sorted_participants() == ["s1", "x2", "x3"]  # R evicted
        store.add(make_feedback("s2", 1.0, rater="R", transaction_id=4))
        assert "R" in store.sorted_participants()
        assert store.sorted_participants() == sorted(store.participants())


class TestLocalTrustBuilder:
    def build_store(self) -> FeedbackStore:
        store = FeedbackStore()
        # alice rates bob positively twice and carol negatively once.
        store.add(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
        store.add(make_feedback("bob", 1.0, rater="alice", transaction_id=2))
        store.add(make_feedback("carol", 0.0, rater="alice", transaction_id=3))
        # carol rates bob negatively.
        store.add(make_feedback("bob", 0.0, rater="carol", transaction_id=4))
        return store

    def test_raw_local_trust_clips_at_zero(self):
        builder = LocalTrustBuilder(self.build_store())
        raw = builder.raw_local_trust()
        assert raw["alice"]["bob"] == 2.0
        assert raw["alice"]["carol"] == 0.0
        assert raw["carol"]["bob"] == 0.0

    def test_normalized_rows_sum_to_one_or_are_empty(self):
        builder = LocalTrustBuilder(self.build_store())
        normalized = builder.normalized_local_trust()
        for row in normalized.values():
            if row:
                assert sum(row.values()) == pytest.approx(1.0)

    def test_normalization_restricted_to_known_peers(self):
        builder = LocalTrustBuilder(self.build_store())
        normalized = builder.normalized_local_trust(peers=["alice", "carol"])
        # bob excluded: alice's only surviving target is carol with zero trust.
        assert normalized["alice"] == {}

    def test_positive_negative_counts(self):
        builder = LocalTrustBuilder(self.build_store())
        assert builder.positive_negative_counts("bob") == (2, 1)
        assert builder.positive_negative_counts("carol") == (0, 1)
        assert builder.positive_negative_counts("unknown") == (0, 0)

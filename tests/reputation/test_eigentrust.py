"""Unit tests for EigenTrust."""

import pytest

from repro.errors import ConfigurationError
from repro.reputation.eigentrust import EigenTrust
from tests.conftest import make_feedback


def feed_community(system, *, rounds: int = 5) -> None:
    """Three honest peers rate each other well and the freeloader badly;
    the freeloader badmouths everyone."""
    honest = ["a", "b", "c"]
    tid = 0
    for _ in range(rounds):
        for rater in honest:
            for subject in honest:
                if rater == subject:
                    continue
                tid += 1
                system.record_feedback(make_feedback(subject, 1.0, rater=rater, transaction_id=tid))
            tid += 1
            system.record_feedback(make_feedback("mallory", 0.0, rater=rater, transaction_id=tid))
        for subject in honest:
            tid += 1
            system.record_feedback(make_feedback(subject, 0.0, rater="mallory", transaction_id=tid))


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            EigenTrust(restart_weight=1.5)
        with pytest.raises(ConfigurationError):
            EigenTrust(max_iterations=0)
        with pytest.raises(ConfigurationError):
            EigenTrust(tolerance=0.0)


class TestScoring:
    def test_empty_store_gives_no_scores(self):
        assert EigenTrust().compute_scores() == {}

    def test_honest_peers_outrank_the_badmouthing_freeloader(self):
        system = EigenTrust()
        feed_community(system)
        scores = system.scores()
        for peer in ("a", "b", "c"):
            assert scores[peer] > scores["mallory"]

    def test_scores_are_in_unit_interval(self):
        system = EigenTrust()
        feed_community(system)
        assert all(0.0 <= score <= 1.0 for score in system.scores().values())

    def test_converges_within_budget(self):
        system = EigenTrust(max_iterations=200, tolerance=1e-10)
        feed_community(system)
        system.refresh()
        assert system.iterations_used < 200

    def test_single_report_degenerate_case(self):
        system = EigenTrust()
        system.record_feedback(make_feedback("bob", 1.0, rater="alice"))
        scores = system.scores()
        assert set(scores) == {"alice", "bob"}
        assert all(0.0 <= value <= 1.0 for value in scores.values())


class TestPretrustedPeers:
    def test_pretrusted_peers_resist_collusion(self):
        """A colluding clique inflating itself is damped by pre-trusted peers."""

        def build(pretrusted):
            system = EigenTrust(pretrusted=pretrusted, restart_weight=0.3)
            tid = 0
            colluders = ["x", "y", "z"]
            honest = ["a", "b"]
            # The collusion ring rates itself highly, many times.
            for _ in range(10):
                for rater in colluders:
                    for subject in colluders:
                        if rater == subject:
                            continue
                        tid += 1
                        system.record_feedback(
                            make_feedback(subject, 1.0, rater=rater, transaction_id=tid)
                        )
            # Honest peers rate each other positively a few times and the
            # colluders negatively.
            for _ in range(3):
                for rater in honest:
                    for subject in honest:
                        if rater == subject:
                            continue
                        tid += 1
                        system.record_feedback(
                            make_feedback(subject, 1.0, rater=rater, transaction_id=tid)
                        )
                    for subject in colluders:
                        tid += 1
                        system.record_feedback(
                            make_feedback(subject, 0.0, rater=rater, transaction_id=tid)
                        )
            return system.scores()

        unprotected = build(pretrusted=[])
        protected = build(pretrusted=["a", "b"])
        honest_margin_unprotected = min(unprotected[p] for p in ("a", "b")) - max(
            unprotected[p] for p in ("x", "y", "z")
        )
        honest_margin_protected = min(protected[p] for p in ("a", "b")) - max(
            protected[p] for p in ("x", "y", "z")
        )
        assert honest_margin_protected > honest_margin_unprotected

    def test_set_pretrusted_invalidates_cache(self):
        system = EigenTrust()
        feed_community(system)
        before = system.scores()
        system.set_pretrusted(["a"])
        after = system.scores()
        assert before != after


class TestRescaling:
    def test_identical_mass_rescales_to_half(self):
        assert EigenTrust._rescale({"a": 0.5, "b": 0.5}) == {"a": 0.5, "b": 0.5}

    def test_rescale_spans_unit_interval(self):
        rescaled = EigenTrust._rescale({"a": 0.1, "b": 0.2, "c": 0.7})
        assert rescaled["a"] == 0.0
        assert rescaled["c"] == 1.0
        assert 0.0 < rescaled["b"] < 1.0

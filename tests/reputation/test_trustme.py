"""Unit tests for the TrustMe-like certificate-gated reputation protocol."""

import pytest

from repro.errors import ConfigurationError
from repro.reputation.trustme import TransactionCertificate, TrustMeReputation
from tests.conftest import make_feedback


class TestTransactionCertificate:
    def test_issue_and_verify(self):
        certificate = TransactionCertificate.issue(1, "alice", "bob", "secret")
        assert certificate.verify("secret")

    def test_wrong_secret_fails_verification(self):
        certificate = TransactionCertificate.issue(1, "alice", "bob", "secret")
        assert not certificate.verify("other-secret")

    def test_token_binds_all_fields(self):
        first = TransactionCertificate.issue(1, "alice", "bob", "secret")
        second = TransactionCertificate.issue(2, "alice", "bob", "secret")
        assert first.token != second.token


class TestTrustMeReputation:
    def test_rejects_bad_replication(self):
        with pytest.raises(ConfigurationError):
            TrustMeReputation(replication=0)

    def test_auto_certified_reports_are_accepted(self):
        system = TrustMeReputation()
        system.record_feedback(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
        assert system.evidence_count == 1
        assert system.rejected_reports == 0
        assert system.score("bob") == 1.0

    def test_uncertified_reports_rejected_when_auto_certify_disabled(self):
        system = TrustMeReputation(auto_certify=False)
        system.record_feedback(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
        assert system.evidence_count == 0
        assert system.rejected_reports == 1

    def test_certified_report_accepted_when_auto_certify_disabled(self):
        system = TrustMeReputation(auto_certify=False)
        system.issue_certificate(1, "alice", "bob")
        system.record_feedback(make_feedback("bob", 1.0, rater="alice", transaction_id=1))
        assert system.evidence_count == 1

    def test_forged_rater_rejected(self):
        system = TrustMeReputation(auto_certify=False)
        system.issue_certificate(1, "alice", "bob")
        system.record_feedback(make_feedback("bob", 0.0, rater="eve", transaction_id=1))
        assert system.evidence_count == 0
        assert system.rejected_reports == 1

    def test_forged_subject_rejected(self):
        system = TrustMeReputation(auto_certify=False)
        system.issue_certificate(1, "alice", "bob")
        system.record_feedback(make_feedback("carol", 0.0, rater="alice", transaction_id=1))
        assert system.rejected_reports == 1

    def test_without_certificate_requirement_everything_is_accepted(self):
        system = TrustMeReputation(require_certificates=False)
        system.record_feedback(make_feedback("bob", 1.0, rater="eve", transaction_id=99))
        assert system.evidence_count == 1

    def test_trust_holding_agents_are_deterministic_and_replicated(self):
        system = TrustMeReputation(replication=3)
        agents = system.trust_holding_agents("bob")
        assert len(agents) == 3
        assert len(set(agents)) == 3
        assert agents == system.trust_holding_agents("bob")
        assert agents != system.trust_holding_agents("carol")

    def test_scores_average_certified_reports(self):
        system = TrustMeReputation()
        ratings = [1.0, 1.0, 0.0, 1.0]
        for index, rating in enumerate(ratings):
            system.record_feedback(
                make_feedback("bob", rating, rater="alice", transaction_id=index)
            )
        assert system.score("bob") == pytest.approx(0.75)

    def test_reset_clears_certificates_and_storage(self):
        system = TrustMeReputation()
        system.record_feedback(make_feedback("bob", 1.0, transaction_id=1))
        system.reset()
        assert system.evidence_count == 0
        assert system.rejected_reports == 0
        assert system.score("bob") == system.default_score

    def test_anonymous_feedback_accepted_with_auto_certify(self):
        system = TrustMeReputation()
        system.record_feedback(make_feedback("bob", 1.0, rater=None, transaction_id=5))
        assert system.evidence_count == 1

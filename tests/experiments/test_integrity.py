"""Record integrity: checksum sidecars, failure detail, the verify-records CLI."""

import json

import pytest

from repro.errors import IntegrityError
from repro.experiments.__main__ import main
from repro.experiments.results import (
    ExperimentRecord,
    checksum_sidecar_path,
    file_sha256,
    verify_file_checksum,
    write_checksum_sidecar,
    write_records_json,
)
from repro.experiments.sweep import SweepSpec, run_sweep


def make_record(status="ok", failure=None):
    return ExperimentRecord(
        experiment="figure1",
        task_index=0,
        params={"n_users": 12},
        seed=3,
        status=status,
        metrics={"score": 0.5} if status == "ok" else {},
        error=None if status == "ok" else "boom",
        failure=failure,
    )


class TestChecksumSidecars:
    def test_sidecar_round_trip(self, tmp_path):
        path = str(tmp_path / "records.json")
        write_records_json(path, [make_record()], checksum=True)
        digest = verify_file_checksum(path)
        assert digest == file_sha256(path)
        # sha256sum-compatible shape: "<digest>  <basename>".
        sidecar_text = open(checksum_sidecar_path(path)).read()
        assert sidecar_text == f"{digest}  records.json\n"

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "records.json"
        write_records_json(str(path), [make_record()], checksum=True)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(IntegrityError, match="SHA-256 mismatch"):
            verify_file_checksum(str(path))

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "records.json"
        write_records_json(str(path), [make_record()], checksum=True)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(IntegrityError):
            verify_file_checksum(str(path))

    def test_missing_sidecar_is_an_error(self, tmp_path):
        path = tmp_path / "records.json"
        write_records_json(str(path), [make_record()], checksum=False)
        with pytest.raises(IntegrityError, match="sidecar"):
            verify_file_checksum(str(path))

    def test_malformed_sidecar_is_an_error(self, tmp_path):
        path = tmp_path / "records.json"
        write_records_json(str(path), [make_record()])
        (tmp_path / "records.json.sha256").write_text("not a digest\n")
        with pytest.raises(IntegrityError, match="malformed"):
            verify_file_checksum(str(path))

    def test_standalone_sidecar_writer(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"\x00\x01\x02")
        sidecar = write_checksum_sidecar(str(path))
        assert sidecar == str(path) + ".sha256"
        verify_file_checksum(str(path))


class TestFailureDetail:
    def test_failure_only_valid_on_error_records(self):
        with pytest.raises(ValueError, match="only valid on error"):
            make_record(status="ok", failure={"exception": "ValueError"})

    def test_failure_round_trips_through_dict(self):
        failure = {
            "exception": "ValueError",
            "message": "boom",
            "traceback": "Traceback ...",
            "retries": 2,
        }
        record = make_record(status="error", failure=failure)
        clone = ExperimentRecord.from_dict(record.to_dict())
        assert clone.failure == failure

    def test_ok_record_bytes_unchanged_by_failure_field(self):
        """Pre-existing record files must stay byte-stable: ``failure`` only
        appears in the payload when set."""
        assert "failure" not in make_record().to_dict()


class TestVerifyRecordsCli:
    def test_intact_artifacts_pass(self, tmp_path, capsys):
        spec = SweepSpec(experiment="figure1", grids={"n_users": [12]}, seed=3)
        journal = str(tmp_path / "sweep.jnl")
        result = run_sweep(spec, journal=journal)
        out = str(tmp_path / "records.json")
        result.write_json(out)  # SweepResult writers checksum by default
        assert main(["verify-records", out, journal]) == 0
        output = capsys.readouterr().out
        assert f"{out}: ok" in output
        assert f"{journal}: ok" in output

    def test_damaged_file_fails_with_exit_one(self, tmp_path, capsys):
        spec = SweepSpec(experiment="figure1", grids={"n_users": [12]}, seed=3)
        out = tmp_path / "records.json"
        run_sweep(spec).write_json(str(out))
        out.write_bytes(out.read_bytes() + b"tail garbage")
        assert main(["verify-records", str(out)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_damaged_journal_reports_line_counts(self, tmp_path, capsys):
        spec = SweepSpec(experiment="figure1", grids={"n_users": [12, 16]}, seed=3)
        journal = tmp_path / "sweep.jnl"
        run_sweep(spec, journal=str(journal))
        lines = journal.read_bytes().split(b"\n")
        damaged = bytearray(lines[1])
        damaged[len(damaged) // 2] ^= 0x01
        lines[1] = bytes(damaged)
        journal.write_bytes(b"\n".join(lines))
        assert main(["verify-records", str(journal)]) == 1
        assert "corrupt/truncated journal lines" in capsys.readouterr().out

    def test_unreadable_path_fails(self, tmp_path, capsys):
        assert main(["verify-records", str(tmp_path / "absent.json")]) == 1


class TestSweepCliFaultFlags:
    def test_journal_flag_resumes(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jnl")
        args = [
            "sweep",
            "figure1",
            "--grid",
            "n_users=12,16",
            "--journal",
            journal,
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "2 tasks resumed from journal" in capsys.readouterr().out

    def test_failed_tasks_print_structured_summaries(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "figure2-left",
                "--grid",
                "threshold=0.5,1.5",
                "--out",
                str(tmp_path / "records.json"),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED task 1" in captured.err
        assert "retries=0" in captured.err
        assert "1 of 2 tasks failed" in captured.err
        payload = json.loads((tmp_path / "records.json").read_text())
        failed = payload["records"][1]
        assert failed["status"] == "error"
        assert failed["failure"]["exception"]
        assert "Traceback" in failed["failure"]["traceback"]

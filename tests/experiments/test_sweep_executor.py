"""The persistent-worker sweep executor: reuse, chunking, streaming, caching."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.results import records_to_json
from repro.experiments.sweep import SweepExecutor, SweepSpec, run_sweep

ANALYTIC_SPEC = dict(
    experiment="figure2-left",
    grids={"threshold": [0.3, 0.5, 0.7], "mechanism": ["eigentrust", "beta"]},
)

ROBUSTNESS_SPEC = dict(
    experiment="robustness",
    grids={
        "scenario": ["collusion-ring"],
        "detect_threshold": [0.05, 0.1, 0.2],
        "seed": [0],
        "n_users": [16],
        "rounds": [8],
    },
)


def _json(result):
    return records_to_json(result.records, campaign=result.spec.campaign_metadata())


class TestSweepExecutor:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(0)
        with pytest.raises(ConfigurationError):
            SweepExecutor(2, chunksize=0)

    def test_persistent_executor_reused_across_sweeps(self):
        spec_a = SweepSpec(**ANALYTIC_SPEC, seed=7)
        spec_b = SweepSpec(**ANALYTIC_SPEC, seed=8)
        with SweepExecutor(2) as executor:
            first = run_sweep(spec_a, executor=executor)
            pool = executor._pool
            assert pool is not None
            second = run_sweep(spec_b, executor=executor)
            assert executor._pool is pool  # same worker pool served both
        assert first.n_ok == second.n_ok == 6
        assert executor._pool is None  # context exit shut the pool down

    def test_records_identical_across_jobs_and_chunking(self):
        spec = SweepSpec(**ANALYTIC_SPEC, seed=7)
        serial = _json(run_sweep(spec, jobs=1))
        parallel = _json(run_sweep(spec, jobs=2))
        chunked = _json(run_sweep(spec, jobs=2, chunksize=1))
        lumped = _json(run_sweep(spec, jobs=2, chunksize=6))
        assert serial == parallel == chunked == lumped

    def test_streaming_emits_every_record_in_task_order(self):
        spec = SweepSpec(**ANALYTIC_SPEC, seed=3)
        streamed = []
        result = run_sweep(spec, jobs=2, chunksize=2, on_record=streamed.append)
        assert [record.task_index for record in streamed] == [0, 1, 2, 3, 4, 5]
        assert streamed == result.records

    def test_inline_streaming_matches_parallel_streaming(self):
        spec = SweepSpec(**ANALYTIC_SPEC, seed=3)
        inline, parallel = [], []
        run_sweep(spec, jobs=1, on_record=inline.append)
        run_sweep(spec, jobs=2, on_record=parallel.append)
        assert inline == parallel


class TestRunCacheInSweeps:
    def test_threshold_sweep_records_match_across_jobs(self):
        """Tasks differing only in detect_threshold share simulations via
        the per-worker run cache — and the records must not show it."""
        spec = SweepSpec(**ROBUSTNESS_SPEC, seed=5)
        serial = _json(run_sweep(spec, jobs=1))
        parallel = _json(run_sweep(spec, jobs=2))
        assert serial == parallel
        payload = json.loads(serial)
        assert len(payload["records"]) == 3
        thresholds = {
            record["params"]["detect_threshold"] for record in payload["records"]
        }
        assert thresholds == {0.05, 0.1, 0.2}
        # Different thresholds genuinely flow into the metrics: the records
        # are not all identical copies of one evaluation.
        detects = [
            record["metrics"]["collusion-ring.eigentrust.time_to_detect"]
            for record in payload["records"]
        ]
        assert len(detects) == 3

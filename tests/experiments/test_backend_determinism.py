"""The sweep determinism contract across compute backends.

``--backend`` is execution telemetry, like ``--jobs``: campaigns must write
byte-identical record files whichever backend computed them, otherwise a
perf migration would silently change science.
"""

import json

import pytest

from repro.core.backend import HAS_NUMPY
from repro.errors import ConfigurationError
from repro.experiments.runner import EXPERIMENTS, run_experiment_structured
from repro.experiments.sweep import (
    SweepSpec,
    expand_tasks,
    run_sweep,
    spec_from_options,
)


def _records_json(backend: str, tmp_path, tag: str) -> bytes:
    spec = SweepSpec(
        experiment="reputation",
        grids={"n_users": [18, 24], "rounds": [6]},
        seed=11,
        backend=backend,
    )
    result = run_sweep(spec)
    path = tmp_path / f"records-{tag}.json"
    result.write_json(str(path))
    return path.read_bytes()


@pytest.mark.skipif(not HAS_NUMPY, reason="vectorized backend needs numpy")
class TestSweepBackendDeterminism:
    def test_records_byte_identical_across_backends(self, tmp_path):
        python_bytes = _records_json("python", tmp_path, "python")
        vectorized_bytes = _records_json("vectorized", tmp_path, "vectorized")
        assert python_bytes == vectorized_bytes
        records = json.loads(python_bytes)
        assert all(r["status"] == "ok" for r in records["records"])

    def test_backend_not_in_campaign_metadata(self):
        spec = SweepSpec(experiment="figure1", grids={"n_users": [10]}, backend="python")
        assert "backend" not in spec.campaign_metadata()

    def test_analytic_experiment_identical_across_backends(self):
        python_metrics = run_experiment_structured("figure1", quick=True, backend="python")
        vectorized_metrics = run_experiment_structured("figure1", quick=True, backend="vectorized")
        assert python_metrics == vectorized_metrics


class TestBackendOption:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(experiment="figure1", grids={"n_users": [10]}, backend="gpu")

    def test_spec_from_options_threads_backend(self):
        spec = spec_from_options("figure1", grid_options=["n_users=10"], backend="python")
        assert spec.backend == "python"
        assert all(task.backend == "python" for task in expand_tasks(spec))

    def test_backend_forwarded_only_when_accepted(self):
        # The satisfaction experiment takes no backend parameter; passing one
        # through the structured runner must be harmless.
        entry = EXPERIMENTS["satisfaction"]
        assert not entry.accepts("backend")
        metrics = run_experiment_structured("satisfaction", quick=True, backend="python")
        assert metrics

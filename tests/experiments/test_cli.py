"""CLI coverage: list/run paths and the sweep subcommand end to end."""

import json

import pytest

from repro.experiments.__main__ import build_sweep_parser, main


class TestLegacyCli:
    def test_list_shows_every_registered_experiment(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in (
            "figure1",
            "figure2-left",
            "figure2-right",
            "claims",
            "reputation",
            "privacy",
            "satisfaction",
            "ablations",
        ):
            assert name in output

    def test_unknown_experiment_exits_with_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no-such-experiment"])
        assert excinfo.value.code != 0
        assert "unknown experiments" in capsys.readouterr().err

    def test_quick_run_prints_report(self, capsys):
        assert main(["figure2-right"]) == 0
        output = capsys.readouterr().out
        assert "==== figure2-right ====" in output
        assert "sharing level" in output

    def test_profile_flag_prints_phase_table(self, capsys):
        assert main(["robustness", "--profile"]) == 0
        output = capsys.readouterr().out
        assert "per-phase wall clock" in output
        for phase in ("setup", "simulate", "refresh", "metrics", "total"):
            assert phase in output


class TestSweepCli:
    def test_help_mentions_sweep(self, capsys):
        parser = build_sweep_parser()
        assert "--grid" in parser.format_help()
        assert "--jobs" in parser.format_help()

    def test_sweep_writes_json_and_csv(self, tmp_path, capsys):
        out = tmp_path / "records.json"
        csv_out = tmp_path / "records.csv"
        code = main(
            [
                "sweep",
                "figure2-left",
                "--grid",
                "threshold=0.4,0.6",
                "--grid",
                "mechanism=eigentrust,beta",
                "--seed",
                "7",
                "--out",
                str(out),
                "--csv",
                str(csv_out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "4 tasks, 4 ok, 0 failed" in output
        payload = json.loads(out.read_text())
        assert payload["campaign"]["seed"] == 7
        assert len(payload["records"]) == 4
        assert all(record["status"] == "ok" for record in payload["records"])
        assert csv_out.read_text().splitlines()[0].startswith("experiment,")

    def test_sweep_parallel_output_matches_serial(self, tmp_path):
        args = [
            "sweep",
            "figure2-left",
            "--grid",
            "threshold=0.4,0.5,0.6",
            "--seed",
            "3",
        ]
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main([*args, "--jobs", "1", "--out", str(serial)]) == 0
        assert main([*args, "--jobs", "2", "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_sweep_stream_writes_ordered_jsonl(self, tmp_path):
        out = tmp_path / "records.json"
        stream = tmp_path / "records.jsonl"
        code = main(
            [
                "sweep",
                "figure2-left",
                "--grid",
                "threshold=0.4,0.5,0.6",
                "--jobs",
                "2",
                "--chunksize",
                "1",
                "--seed",
                "3",
                "--out",
                str(out),
                "--stream",
                str(stream),
            ]
        )
        assert code == 0
        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        assert [entry["task_index"] for entry in lines] == [0, 1, 2]
        payload = json.loads(out.read_text())
        assert lines == payload["records"]

    def test_sweep_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "no-such-experiment", "--grid", "threshold=0.5"])
        assert excinfo.value.code != 0

    def test_sweep_bad_grid_option_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "figure2-left", "--grid", "threshold"])
        assert "--grid expects" in capsys.readouterr().err

    def test_sweep_without_parameters_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "figure2-left"])
        assert "at least one" in capsys.readouterr().err

    def test_sweep_with_failed_task_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "records.json"
        code = main(
            [
                "sweep",
                "figure2-left",
                "--grid",
                "threshold=0.5,1.5",
                "--out",
                str(out),
            ]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        statuses = [record["status"] for record in payload["records"]]
        assert statuses == ["ok", "error"]

"""Tests for the sweep engine and the structured-results layer."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.results import (
    ExperimentRecord,
    RecordValueError,
    campaign_from_json,
    records_from_json,
    records_to_csv,
    records_to_json,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment_structured
from repro.experiments.sweep import (
    ParamRange,
    SweepSpec,
    derive_task_seed,
    expand_tasks,
    parse_grid_option,
    parse_range_option,
    parse_scalar,
    run_sweep,
    spec_from_options,
)

ANALYTIC_SPEC = dict(
    experiment="figure2-left",
    grids={"threshold": [0.4, 0.6], "mechanism": ["eigentrust", "beta"]},
)


class TestRecords:
    def make_record(self, **overrides):
        payload = dict(
            experiment="figure2-left",
            task_index=0,
            params={"threshold": 0.5},
            seed=123,
            status="ok",
            metrics={"best_trust": 0.7, "best_in_area_a": True},
        )
        payload.update(overrides)
        return ExperimentRecord(**payload)

    def test_bad_status_rejected(self):
        with pytest.raises(ValueError):
            self.make_record(status="maybe")

    def test_non_scalar_metric_rejected(self):
        with pytest.raises(RecordValueError):
            self.make_record(metrics={"series": [1, 2, 3]})

    def test_non_finite_metric_rejected(self):
        with pytest.raises(RecordValueError):
            self.make_record(metrics={"trust": float("nan")})
        with pytest.raises(RecordValueError):
            self.make_record(params={"threshold": float("inf")})

    def test_json_round_trip(self):
        records = [self.make_record(task_index=i) for i in range(3)]
        text = records_to_json(records, campaign={"experiment": "figure2-left"})
        parsed = records_from_json(text)
        assert parsed == records
        assert campaign_from_json(text) == {"experiment": "figure2-left"}

    def test_json_is_deterministic_and_sorted_by_index(self):
        records = [self.make_record(task_index=i) for i in (2, 0, 1)]
        text = records_to_json(records)
        assert text == records_to_json(list(reversed(records)))
        indices = [entry["task_index"] for entry in json.loads(text)["records"]]
        assert indices == [0, 1, 2]

    def test_csv_has_param_and_metric_columns(self):
        csv_text = records_to_csv([self.make_record()])
        header, row = csv_text.splitlines()[:2]
        assert "param_threshold" in header
        assert "metric_best_trust" in header
        assert "figure2-left" in row


class TestExpansion:
    def test_grid_is_cartesian_product_in_declaration_order(self):
        tasks = expand_tasks(SweepSpec(**ANALYTIC_SPEC))
        assert len(tasks) == 4
        assert tasks[0].params == {"threshold": 0.4, "mechanism": "eigentrust"}
        assert tasks[1].params == {"threshold": 0.4, "mechanism": "beta"}
        assert [task.index for task in tasks] == [0, 1, 2, 3]

    def test_task_seeds_are_deterministic_and_distinct(self):
        first = expand_tasks(SweepSpec(**ANALYTIC_SPEC, seed=9))
        second = expand_tasks(SweepSpec(**ANALYTIC_SPEC, seed=9))
        assert [task.seed for task in first] == [task.seed for task in second]
        assert len({task.seed for task in first}) == len(first)
        other_campaign = expand_tasks(SweepSpec(**ANALYTIC_SPEC, seed=10))
        assert [task.seed for task in first] != [task.seed for task in other_campaign]

    def test_derive_task_seed_ignores_hash_randomization(self):
        seed = derive_task_seed(7, "figure1", 0, {"n_users": 25, "rounds": 10})
        # SHA-256-derived constant: stable across processes and Python runs.
        assert seed == derive_task_seed(7, "figure1", 0, {"rounds": 10, "n_users": 25})
        assert seed != derive_task_seed(7, "figure1", 1, {"n_users": 25, "rounds": 10})

    def test_random_sampler_is_seed_deterministic(self):
        spec = lambda s: SweepSpec(  # noqa: E731
            experiment="figure2-left",
            grids={"mechanism": ["eigentrust", "beta"]},
            ranges={"threshold": ParamRange(0.2, 0.8)},
            sampler="random",
            n_samples=6,
            seed=s,
        )
        assert [t.params for t in expand_tasks(spec(4))] == [
            t.params for t in expand_tasks(spec(4))
        ]
        assert [t.params for t in expand_tasks(spec(4))] != [
            t.params for t in expand_tasks(spec(5))
        ]

    def test_latin_sampler_visits_every_stratum_once(self):
        n = 8
        spec = SweepSpec(
            experiment="figure2-left",
            ranges={"threshold": ParamRange(0.0, 1.0)},
            sampler="latin",
            n_samples=n,
            seed=1,
        )
        values = [task.params["threshold"] for task in expand_tasks(spec)]
        strata = sorted(int(value * n) for value in values)
        assert strata == list(range(n))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SweepSpec(experiment="nope", grids={"threshold": [0.5]})
        with pytest.raises(ConfigurationError):
            SweepSpec(experiment="figure2-left", grids={"not_a_param": [1]})
        with pytest.raises(ConfigurationError):
            SweepSpec(
                experiment="figure2-left",
                ranges={"threshold": ParamRange(0.0, 1.0)},
                sampler="grid",
            )
        with pytest.raises(ConfigurationError):
            SweepSpec(
                experiment="figure2-left",
                ranges={"threshold": ParamRange(0.0, 1.0)},
                sampler="random",
                n_samples=0,
            )
        with pytest.raises(ConfigurationError):
            SweepSpec(experiment="figure2-left")
        with pytest.raises(ConfigurationError):
            # n_samples is meaningless under the full cartesian grid.
            SweepSpec(
                experiment="figure2-left",
                grids={"threshold": [0.4, 0.6]},
                n_samples=5,
            )
        with pytest.raises(ConfigurationError):
            # A 2-sample latin design cannot cover a 3-value grid axis.
            SweepSpec(
                experiment="figure2-left",
                grids={"mechanism": ["eigentrust", "beta", "average"]},
                sampler="latin",
                n_samples=2,
            )


class TestRunSweep:
    def test_serial_and_parallel_records_are_byte_identical(self):
        spec = SweepSpec(**ANALYTIC_SPEC, seed=7)
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2)
        assert serial.n_ok == parallel.n_ok == 4
        campaign = spec.campaign_metadata()
        assert records_to_json(serial.records, campaign=campaign) == records_to_json(
            parallel.records, campaign=campaign
        )

    def test_failing_task_becomes_error_record(self):
        # threshold 1.5 violates figure2-left's [0, 1] validation.
        spec = SweepSpec(
            experiment="figure2-left", grids={"threshold": [0.5, 1.5]}, seed=0
        )
        result = run_sweep(spec, jobs=1)
        assert result.n_ok == 1
        assert result.n_errors == 1
        failed = result.records[1]
        assert failed.status == "error"
        assert "threshold" in failed.error

    def test_swept_seed_param_wins_over_derived_seed(self):
        # figure2-right accepts a seed; quick base keeps it analytic-fast.
        spec = SweepSpec(
            experiment="figure2-right", grids={"seed": [1, 2]}, seed=99
        )
        result = run_sweep(spec, jobs=1)
        assert [record.params["seed"] for record in result.records] == [1, 2]
        # The record reports the seed actually used — the swept one.
        assert [record.seed for record in result.records] == [1, 2]

    def test_derived_seed_recorded_when_not_swept(self):
        spec = SweepSpec(experiment="figure2-right", grids={"simulate": [False]}, seed=5)
        result = run_sweep(spec, jobs=1)
        [record] = result.records
        assert record.seed == expand_tasks(spec)[0].seed

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_sweep(SweepSpec(**ANALYTIC_SPEC), jobs=0)

    def test_write_json_and_csv(self, tmp_path):
        result = run_sweep(SweepSpec(**ANALYTIC_SPEC, seed=3), jobs=1)
        json_path = tmp_path / "records.json"
        csv_path = tmp_path / "records.csv"
        result.write_json(str(json_path))
        result.write_csv(str(csv_path))
        payload = json.loads(json_path.read_text())
        assert payload["campaign"]["experiment"] == "figure2-left"
        assert "jobs" not in payload["campaign"]  # determinism contract
        assert len(payload["records"]) == 4
        assert csv_path.read_text().startswith("experiment,")


class TestStructuredRunner:
    def test_every_entry_has_a_summarize_adapter(self):
        for entry in EXPERIMENTS.values():
            assert callable(entry.summarize)

    def test_structured_run_returns_flat_scalars(self):
        metrics = run_experiment_structured("figure2-left", quick=True)
        # quick preset: 5 sharing levels x the 5 default strictness levels
        assert metrics["n_points"] == 25
        for value in metrics.values():
            assert isinstance(value, (bool, int, float, str, type(None)))

    def test_metric_keys_stay_distinct_for_close_parameter_values(self):
        metrics = run_experiment_structured("figure2-right", quick=True, levels=(0.111, 0.114))
        assert "analytic[0.111].trust" in metrics
        assert "analytic[0.114].trust" in metrics

    def test_seed_forwarded_only_when_accepted(self):
        # figure2-left takes no seed: passing one must not blow up.
        with_seed = run_experiment_structured("figure2-left", quick=True, seed=99)
        without = run_experiment_structured("figure2-left", quick=True)
        assert with_seed == without


class TestOptionParsing:
    def test_parse_scalar(self):
        assert parse_scalar("25") == 25
        assert parse_scalar("0.5") == 0.5
        assert parse_scalar("true") is True
        assert parse_scalar("no") is False
        assert parse_scalar("eigentrust") == "eigentrust"
        # Non-finite floats would make the JSON output unparseable.
        assert parse_scalar("nan") == "nan"
        assert parse_scalar("inf") == "inf"

    def test_parse_grid_option(self):
        key, values = parse_grid_option("n_users=25,50")
        assert key == "n_users"
        assert values == [25, 50]
        with pytest.raises(ConfigurationError):
            parse_grid_option("n_users")
        with pytest.raises(ConfigurationError):
            parse_grid_option("=1,2")

    def test_parse_range_option(self):
        key, bounds = parse_range_option("threshold=0.2:0.8")
        assert key == "threshold"
        assert bounds == ParamRange(0.2, 0.8)
        with pytest.raises(ConfigurationError):
            parse_range_option("threshold=0.2")
        with pytest.raises(ConfigurationError):
            parse_range_option("threshold=a:b")

    def test_spec_from_options(self):
        spec = spec_from_options(
            "figure2-left",
            grid_options=["threshold=0.4,0.6", "mechanism=eigentrust,beta"],
            seed=7,
        )
        assert spec.grids == {
            "threshold": [0.4, 0.6],
            "mechanism": ["eigentrust", "beta"],
        }
        assert spec.seed == 7

    def test_repeated_grid_key_extends_the_value_list(self):
        spec = spec_from_options(
            "figure2-left",
            grid_options=["threshold=0.4", "threshold=0.6"],
        )
        assert spec.grids == {"threshold": [0.4, 0.6]}

    def test_repeated_range_key_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_from_options(
                "figure2-left",
                range_options=["threshold=0.2:0.4", "threshold=0.5:0.7"],
                sampler="random",
                n_samples=3,
            )

    def test_non_scalar_grid_value_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(
                experiment="figure2-left",
                grids={"sharing_levels": [[0.1, 0.2]]},
            )

    def test_record_dicts_are_decoupled_from_caller(self):
        params = {"threshold": 0.5}
        record = ExperimentRecord(
            experiment="figure2-left",
            task_index=0,
            params=params,
            seed=None,
            status="ok",
        )
        params["threshold"] = 0.9
        assert record.params["threshold"] == 0.5

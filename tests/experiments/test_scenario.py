"""Integration tests for the end-to-end scenario harness."""

import pytest

from repro.core.config import SystemSettings
from repro.errors import ConfigurationError
from repro.experiments.scenario import Scenario, ScenarioConfig


class TestScenarioConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n_users=1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(rounds=0)


class TestScenarioRun:
    def test_facets_and_trust_are_bounded(self, default_scenario_result):
        result = default_scenario_result
        for value in result.facets.as_dict().values():
            assert 0.0 <= value <= 1.0
        assert 0.0 <= result.trust.global_trust <= 1.0
        assert 0.0 <= result.reputation_accuracy <= 1.0

    def test_per_user_facets_cover_population(self, default_scenario_result):
        result = default_scenario_result
        assert set(result.per_user_facets) == set(result.graph.user_ids())
        assert set(result.trust.per_user_trust) == set(result.graph.user_ids())

    def test_ledger_tracks_disclosed_feedback(self, default_scenario_result):
        result = default_scenario_result
        # Two ledger entries (rater + subject) per disclosed feedback report.
        assert len(result.ledger) == 2 * len(result.simulation.disclosed_feedbacks)

    def test_reputation_scores_only_for_participants(self, default_scenario_result):
        result = default_scenario_result
        assert result.reputation_scores
        known = set(result.graph.user_ids())
        base_ids = {peer_id.split("#")[0] for peer_id in result.reputation_scores}
        assert base_ids <= known

    def test_satisfaction_tracker_observed_consumers(self, default_scenario_result):
        result = default_scenario_result
        assert result.tracker.participants()

    def test_priserv_holds_every_profile_attribute(self, default_scenario_result):
        result = default_scenario_result
        expected = sum(len(user.profile) for user in result.graph.users())
        assert len(result.priserv.published_items()) == expected

    def test_reproducible_for_same_seed(self):
        config = ScenarioConfig(n_users=20, rounds=8, seed=11)
        first = Scenario(config).run()
        second = Scenario(ScenarioConfig(n_users=20, rounds=8, seed=11)).run()
        assert first.trust.global_trust == pytest.approx(second.trust.global_trust)
        assert first.facets == second.facets

    def test_mechanism_none_disables_reputation(self):
        config = ScenarioConfig(
            n_users=20,
            rounds=6,
            seed=2,
            settings=SystemSettings(reputation_mechanism="none"),
        )
        result = Scenario(config).run()
        assert result.reputation_system is None
        assert result.reputation_scores == {}
        assert result.facets.reputation == 0.0

    def test_anonymous_feedback_wraps_mechanism(self):
        config = ScenarioConfig(
            n_users=20,
            rounds=6,
            seed=2,
            settings=SystemSettings(anonymous_feedback=True),
        )
        result = Scenario(config).run()
        assert type(result.reputation_system).__name__ == "AnonymousFeedbackReputation"
        assert all(f.rater is None for f in result.simulation.feedbacks)

    def test_zero_sharing_means_no_disclosures(self):
        config = ScenarioConfig(
            n_users=20,
            rounds=6,
            seed=2,
            settings=SystemSettings(sharing_level=0.0),
        )
        result = Scenario(config).run()
        assert result.simulation.disclosed_feedbacks == []
        assert len(result.ledger) == 0
        assert result.facets.privacy > 0.8

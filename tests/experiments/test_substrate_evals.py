"""Integration tests for the substrate-validation experiments (E-R1, E-P1, E-S1)."""

import pytest

from repro.experiments import privacy_eval, reputation_eval, satisfaction_eval


@pytest.fixture(scope="module")
def reputation_result():
    return reputation_eval.run(
        mechanisms=("none", "average", "beta", "eigentrust"),
        malicious_fractions=(0.3,),
        n_users=30,
        rounds=15,
        seed=2,
    )


@pytest.fixture(scope="module")
def privacy_result():
    return privacy_eval.run(n_users=25, n_requests=200, breach_rate=0.1, seed=2)


@pytest.fixture(scope="module")
def satisfaction_result():
    return satisfaction_eval.run(n_providers=8, n_consumers=15, rounds=20, seed=2)


class TestReputationEval:
    def test_grid_is_complete(self, reputation_result):
        assert len(reputation_result.outcomes) == 4

    def test_every_mechanism_beats_the_baseline(self, reputation_result):
        improvements = reputation_result.improvement_over_baseline()
        assert set(improvements) == {"average", "beta", "eigentrust"}
        assert all(value > 0 for value in improvements.values())

    def test_mechanisms_have_informative_rankings(self, reputation_result):
        for outcome in reputation_result.outcomes:
            if outcome.mechanism == "none":
                assert outcome.ranking_accuracy == 0.5
            else:
                assert outcome.ranking_accuracy > 0.5

    def test_report_renders(self, reputation_result):
        text = reputation_eval.report(reputation_result)
        assert "E-R1" in text
        assert "eigentrust" in text


class TestPrivacyEval:
    def test_requests_are_accounted_for(self, privacy_result):
        assert privacy_result.requests == privacy_result.granted + privacy_result.denied
        assert privacy_result.breaches_injected > 0

    def test_some_requests_denied_with_reasons(self, privacy_result):
        assert privacy_result.denied > 0
        assert privacy_result.denial_reasons

    def test_breaches_reduce_policy_respect(self, privacy_result):
        assert privacy_result.policy_respect < 1.0
        clean = privacy_eval.run(n_users=25, n_requests=200, breach_rate=0.0, seed=2)
        assert clean.policy_respect == 1.0
        assert clean.policy_respect > privacy_result.policy_respect

    def test_compliance_report_complete(self, privacy_result):
        assert len(privacy_result.compliance.scores) == 8
        assert 0.0 < privacy_result.compliance.overall <= 1.0

    def test_report_renders(self, privacy_result):
        text = privacy_eval.report(privacy_result)
        assert "OECD" in text


class TestSatisfactionEval:
    def test_every_strategy_evaluated(self, satisfaction_result):
        names = {outcome.strategy for outcome in satisfaction_result.outcomes}
        assert names == {"random", "capacity", "quality", "reputation", "satisfaction-balanced"}

    def test_satisfaction_balanced_has_best_minimum_provider_satisfaction(
        self, satisfaction_result
    ):
        by_strategy = satisfaction_result.by_strategy()
        balanced = by_strategy["satisfaction-balanced"]
        for name, outcome in by_strategy.items():
            if name == "satisfaction-balanced":
                continue
            assert balanced.min_provider_satisfaction >= outcome.min_provider_satisfaction

    def test_quality_strategy_has_best_quality_but_imposes_more(self, satisfaction_result):
        by_strategy = satisfaction_result.by_strategy()
        quality = by_strategy["quality"]
        balanced = by_strategy["satisfaction-balanced"]
        assert quality.mean_quality >= balanced.mean_quality
        assert quality.imposed_fraction > balanced.imposed_fraction

    def test_values_bounded(self, satisfaction_result):
        for outcome in satisfaction_result.outcomes:
            assert 0.0 <= outcome.mean_consumer_satisfaction <= 1.0
            assert 0.0 <= outcome.imposed_fraction <= 1.0

    def test_report_renders(self, satisfaction_result):
        assert "E-S1" in satisfaction_eval.report(satisfaction_result)

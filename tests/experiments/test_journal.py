"""The durable sweep journal: resume semantics and damage tolerance."""

import json

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.experiments.journal import SweepJournal, campaign_digest, verify_journal
from repro.experiments.results import records_to_json
from repro.experiments.sweep import SweepSpec, run_sweep

SPEC = dict(
    experiment="figure1",
    grids={"n_users": [12, 16], "rounds": [6, 8]},
)


def make_spec(seed=7):
    return SweepSpec(**SPEC, seed=seed)


def _json(result):
    return records_to_json(result.records, campaign=result.spec.campaign_metadata())


def _journal_lines(path):
    return path.read_bytes().split(b"\n")


class TestJournaledSweep:
    def test_journaled_sweep_matches_cold_sweep(self, tmp_path):
        cold = _json(run_sweep(make_spec()))
        journaled = run_sweep(make_spec(), journal=str(tmp_path / "sweep.jnl"))
        assert _json(journaled) == cold
        assert journaled.n_resumed == 0

    def test_rerun_resumes_every_task(self, tmp_path):
        journal = str(tmp_path / "sweep.jnl")
        first = run_sweep(make_spec(), journal=journal)
        executed = []
        second = run_sweep(make_spec(), journal=journal, on_record=executed.append)
        assert executed == []  # nothing left to run
        assert second.n_resumed == 4
        assert _json(second) == _json(first)

    def test_partial_journal_resumes_only_missing_tasks(self, tmp_path):
        cold = _json(run_sweep(make_spec()))
        journal_path = tmp_path / "sweep.jnl"
        run_sweep(make_spec(), journal=str(journal_path))
        # Keep the header plus the first two record lines — as if the
        # process died after completing tasks 0 and 1.
        lines = _journal_lines(journal_path)
        journal_path.write_bytes(b"\n".join(lines[:3]) + b"\n")

        executed = []
        result = run_sweep(make_spec(), journal=str(journal_path), on_record=executed.append)
        assert sorted(record.task_index for record in executed) == [2, 3]
        assert result.n_resumed == 2
        assert _json(result) == cold

    def test_corrupt_line_re_executes_only_that_task(self, tmp_path):
        cold = _json(run_sweep(make_spec()))
        journal_path = tmp_path / "sweep.jnl"
        run_sweep(make_spec(), journal=str(journal_path))
        lines = _journal_lines(journal_path)
        damaged = bytearray(lines[2])
        damaged[len(damaged) // 2] ^= 0x01
        lines[2] = bytes(damaged)
        journal_path.write_bytes(b"\n".join(lines))

        executed = []
        result = run_sweep(make_spec(), journal=str(journal_path), on_record=executed.append)
        # With jobs=1 the journal lines are in task order, so line 2 held
        # task 1 — the only task the damage should force back out.
        assert [record.task_index for record in executed] == [1]
        assert result.n_resumed == 3
        assert _json(result) == cold

    def test_truncated_tail_line_is_survivable(self, tmp_path):
        cold = _json(run_sweep(make_spec()))
        journal_path = tmp_path / "sweep.jnl"
        run_sweep(make_spec(), journal=str(journal_path))
        # Chop the file mid-way through the last record line: the classic
        # crash-during-append shape.
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[: len(raw) - 40])

        result = run_sweep(make_spec(), journal=str(journal_path))
        assert result.n_resumed == 3
        assert _json(result) == cold

    def test_different_campaign_is_rejected(self, tmp_path):
        journal = str(tmp_path / "sweep.jnl")
        run_sweep(make_spec(seed=7), journal=journal)
        with pytest.raises(ConfigurationError, match="different campaign"):
            run_sweep(make_spec(seed=8), journal=journal)

    def test_malformed_header_is_rejected(self, tmp_path):
        journal_path = tmp_path / "sweep.jnl"
        journal_path.write_bytes(b"this is not a journal\n")
        with pytest.raises(IntegrityError, match="malformed header"):
            run_sweep(make_spec(), journal=str(journal_path))


class TestJournalPrimitives:
    def test_open_creates_header_with_campaign_digest(self, tmp_path):
        path = tmp_path / "fresh.jnl"
        campaign = {"experiment": "figure1", "seed": 1}
        journal, completed, n_invalid = SweepJournal.open(str(path), campaign)
        journal.close()
        assert completed == {}
        assert n_invalid == 0
        header = json.loads(_journal_lines(path)[0])
        assert header["campaign_sha256"] == campaign_digest(campaign)

    def test_verify_journal_counts_damage(self, tmp_path):
        journal_path = tmp_path / "sweep.jnl"
        run_sweep(make_spec(), journal=str(journal_path))
        assert verify_journal(str(journal_path)) == (4, 0)
        lines = _journal_lines(journal_path)
        damaged = bytearray(lines[3])
        damaged[len(damaged) // 2] ^= 0x01
        lines[3] = bytes(damaged)
        journal_path.write_bytes(b"\n".join(lines))
        assert verify_journal(str(journal_path)) == (3, 1)

    def test_verify_journal_rejects_non_journal(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x00\x01\x02\n")
        with pytest.raises(IntegrityError):
            verify_journal(str(path))

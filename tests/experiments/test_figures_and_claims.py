"""Integration tests for the figure and claim experiments (quick settings).

These are the reproduction's acceptance tests: they assert the *shapes* the
paper claims, on small-but-real runs of the experiment drivers.
"""

import pytest

from repro.experiments import ablations, claims, figure1, figure2_left, figure2_right


@pytest.fixture(scope="module")
def figure1_result():
    return figure1.run(n_users=25, rounds=10, seed=1)


@pytest.fixture(scope="module")
def figure2_right_result():
    return figure2_right.run(
        levels=(0.0, 0.3, 0.6, 1.0), simulate=True, n_users=25, rounds=10, seed=1
    )


@pytest.fixture(scope="module")
def claims_result():
    return claims.run(n_users=25, rounds=10, seed=1)


@pytest.fixture(scope="module")
def ablation_result():
    return ablations.run(n_users=25, rounds=10, seed=1)


class TestFigure1:
    def test_every_paper_arrow_sign_is_reproduced(self, figure1_result):
        assert figure1_result.all_signs_match
        assert set(figure1_result.sign_matches) == set(figure1.EXPECTED_SIGNS)

    def test_empirical_contrasts_hold(self, figure1_result):
        assert figure1_result.all_contrasts_hold

    def test_report_renders(self, figure1_result):
        text = figure1.report(figure1_result)
        assert "E-F1" in text
        assert "satisfaction -> trust" in text


class TestFigure2Left:
    def test_area_a_exists_and_contains_the_optimum(self):
        result = figure2_left.run(threshold=0.5)
        assert result.area_a_points
        assert 0.0 < result.area_a_fraction < 1.0
        assert result.best_in_area_a

    def test_area_a_shrinks_with_a_stricter_threshold(self):
        loose = figure2_left.run(threshold=0.4)
        strict = figure2_left.run(threshold=0.65)
        assert len(strict.area_a_points) < len(loose.area_a_points)

    def test_extreme_sharing_levels_are_outside_area_a(self):
        result = figure2_left.run(threshold=0.5)
        for point in result.area_a_points:
            assert point.settings.sharing_level not in (0.0,)

    def test_report_renders(self):
        assert "Area A" in figure2_left.report(figure2_left.run())


class TestFigure2Right:
    def test_analytic_shapes(self, figure2_right_result):
        points = figure2_right_result.analytic_points
        privacy = [p.facets.privacy for p in points]
        reputation = [p.facets.reputation for p in points]
        assert all(a >= b for a, b in zip(privacy, privacy[1:], strict=False))
        assert all(a <= b for a, b in zip(reputation, reputation[1:], strict=False))

    def test_simulated_shapes_match_the_paper(self, figure2_right_result):
        points = figure2_right_result.simulated_points
        assert len(points) == 4
        # Privacy at the lowest sharing level beats privacy at the highest.
        assert points[0].facets.privacy > points[-1].facets.privacy
        # Reputation power at the highest sharing level beats the lowest.
        assert points[-1].facets.reputation >= points[0].facets.reputation

    def test_interior_optimum_and_iso_satisfaction_pairs(self, figure2_right_result):
        assert 0.0 < figure2_right_result.best_analytic.sharing_level < 1.0
        assert figure2_right_result.iso_satisfaction_pairs

    def test_report_renders_both_tables(self, figure2_right_result):
        text = figure2_right.report(figure2_right_result)
        assert "analytic model" in text
        assert "full simulation" in text


class TestClaims:
    def test_all_five_claims_hold(self, claims_result):
        outcomes = claims_result.by_id()
        assert set(outcomes) == {"E-C1", "E-C2", "E-C3", "E-C4", "E-C5"}
        assert claims_result.all_hold

    def test_report_renders(self, claims_result):
        text = claims.report(claims_result)
        assert "E-C1" in text and "E-C5" in text


class TestAblations:
    def test_aggregator_ablation_covers_all_aggregators(self, ablation_result):
        names = {outcome.aggregator for outcome in ablation_result.aggregators}
        assert names == {"weighted", "geometric", "minimum", "owa"}

    def test_minimum_aggregator_penalizes_unbalanced_profiles_most(self, ablation_result):
        by_name = ablation_result.aggregator_by_name()
        assert by_name["minimum"].unbalanced_penalty >= by_name["weighted"].unbalanced_penalty
        assert by_name["geometric"].unbalanced_penalty > by_name["weighted"].unbalanced_penalty

    def test_every_aggregator_finds_an_interior_optimum_in_area_a(self, ablation_result):
        for outcome in ablation_result.aggregators:
            assert 0.0 < outcome.best_sharing_level < 1.0
            assert outcome.best_in_area_a

    def test_anonymity_trades_reputation_for_privacy(self, ablation_result):
        modes = ablation_result.anonymity_by_mode()
        identified = modes["identified-eigentrust"]
        anonymous = modes["anonymous-eigentrust"]
        assert anonymous.privacy_facet > identified.privacy_facet
        assert anonymous.reputation_facet <= identified.reputation_facet

    def test_beta_survives_anonymity_better_than_eigentrust(self, ablation_result):
        modes = ablation_result.anonymity_by_mode()
        # The count-based Beta mechanism does not use rater identities, so
        # stripping them barely moves its accuracy; EigenTrust's rater-
        # weighted aggregation loses its local-trust signal entirely (its
        # scores degenerate to the pre-trusted restart distribution).
        beta_shift = abs(
            modes["identified-beta"].reputation_accuracy
            - modes["anonymous-beta"].reputation_accuracy
        )
        assert beta_shift < 0.15
        assert (
            modes["anonymous-beta"].reputation_accuracy > 0.5
        ), "Beta should still separate good from bad peers under anonymity"

    def test_report_renders(self, ablation_result):
        text = ablations.report(ablation_result)
        assert "E-A1" in text and "E-A2" in text

"""Tests for the registered robustness experiment and its sweep wiring."""

import math

from repro.experiments.results import records_to_json
from repro.experiments.runner import (
    get_experiment,
    run_experiment,
    run_experiment_structured,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.experiments import robustness

QUICK = dict(
    scenarios=("collusion-ring",),
    mechanisms=("none", "average"),
    n_users=16,
    rounds=6,
    seed=4,
)


def test_registered_with_quick_kwargs():
    entry = get_experiment("robustness")
    assert entry.experiment_ids == ("E-X1",)
    assert entry.accepts("seed")
    assert entry.accepts("backend")
    assert entry.accepts("scenario")


def test_run_covers_the_matrix():
    result = robustness.run(**QUICK)
    assert len(result.outcomes) == 2  # 1 scenario x 2 mechanisms
    assert {o.mechanism for o in result.outcomes} == {"none", "average"}
    assert all(o.scenario == "collusion-ring" for o in result.outcomes)


def test_singular_scenario_and_mechanism_override_lists():
    result = robustness.run(
        scenarios=("collusion-ring", "slander"),
        scenario="slander",
        mechanisms=("none", "average"),
        mechanism="average",
        n_users=16,
        rounds=6,
        seed=4,
    )
    assert len(result.outcomes) == 1
    assert result.outcomes[0].scenario == "slander"
    assert result.outcomes[0].mechanism == "average"


def test_default_run_uses_whole_catalog():
    from repro.scenarios.catalog import scenario_names

    result = robustness.run(mechanisms=("none",), n_users=12, rounds=4, seed=1)
    assert {o.scenario for o in result.outcomes} == set(scenario_names())


def test_summarize_is_flat_finite_scalars():
    result = robustness.run(**QUICK)
    metrics = robustness.summarize(result)
    assert metrics["n_outcomes"] == 2
    assert "collusion-ring.average.separation_attack" in metrics
    assert "collusion-ring.average.time_to_detect" in metrics
    assert "resistance.average" in metrics
    # The scoreless baseline is excluded from the resistance ranking: its
    # separation is identically zero, which would out-rank real mechanisms.
    assert "resistance.none" not in metrics
    for key, value in metrics.items():
        assert isinstance(value, (bool, int, float, str)), key
        if isinstance(value, float):
            assert math.isfinite(value), key


def test_resistance_excludes_baseline_row():
    result = robustness.run(
        scenarios=("baseline", "collusion-ring"),
        mechanisms=("average",),
        n_users=16,
        rounds=6,
        seed=4,
    )
    resistance = result.resistance_by_mechanism()
    attack_row = [o for o in result.outcomes if o.scenario == "collusion-ring"]
    assert resistance["average"] == attack_row[0].robustness.attack_separation


def test_report_renders_tables():
    result = robustness.run(**QUICK)
    text = robustness.report(result)
    assert "E-X1" in text
    assert "collusion-ring" in text
    assert "attack resistance" in text


def test_cli_quick_run():
    text = run_experiment("robustness", quick=True, rounds=6, n_users=16)
    assert "scenario" in text and "mechanism" in text


def test_structured_run_accepts_seed_and_backend():
    metrics = run_experiment_structured(
        "robustness", quick=True, seed=11, backend="python", rounds=6, n_users=16
    )
    assert metrics["n_outcomes"] == 4  # quick preset: 2 scenarios x 2 mechanisms


def test_sweep_records_identical_across_jobs_and_backends():
    def spec(backend):
        return SweepSpec(
            experiment="robustness",
            grids={
                "scenario": ["collusion-ring", "whitewash-wave"],
                "n_users": [16],
                "rounds": [6],
            },
            seed=7,
            backend=backend,
        )

    serial = run_sweep(spec("python"), jobs=1)
    parallel = run_sweep(spec("vectorized"), jobs=2)
    assert all(record.ok for record in serial.records)
    serial_json = records_to_json(serial.records, campaign=serial.spec.campaign_metadata())
    parallel_json = records_to_json(parallel.records, campaign=parallel.spec.campaign_metadata())
    assert serial_json == parallel_json

"""Unit tests for reporting helpers, the experiment registry and the CLI."""

import pytest

from repro.experiments.__main__ import build_parser, main
from repro.experiments.reporting import format_series, format_table, format_value
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestFormatting:
    def test_format_value(self):
        assert format_value(0.123456) == "0.123"
        assert format_value(0.5, precision=1) == "0.5"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value("text") == "text"
        assert format_value(7) == "7"

    def test_format_table_alignment_and_title(self):
        table = format_table(["name", "value"], [("a", 1.0), ("longer", 0.25)], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2  # header/sep/rows aligned

    def test_format_table_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table

    def test_format_series(self):
        series = format_series("y", [0.0, 1.0], [0.5, 0.6])
        assert "y" in series
        assert "0.500" in series


class TestRegistry:
    def test_registry_covers_every_design_experiment_id(self):
        ids = {eid for entry in EXPERIMENTS.values() for eid in entry.experiment_ids}
        expected = {
            "E-F1",
            "E-F2L",
            "E-F2R",
            "E-C1",
            "E-C2",
            "E-C3",
            "E-C4",
            "E-C5",
            "E-R1",
            "E-P1",
            "E-S1",
            "E-A1",
            "E-A2",
        }
        assert expected <= ids

    def test_every_entry_has_quick_kwargs_and_callables(self):
        for entry in EXPERIMENTS.values():
            assert callable(entry.run)
            assert callable(entry.report)
            assert isinstance(entry.quick_kwargs, dict)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("does-not-exist")

    def test_run_experiment_returns_report_text(self):
        text = run_experiment("figure2-right", quick=True)
        assert "sharing level" in text
        assert "E-F2R" in text


class TestCli:
    def test_parser_lists_experiments_in_help(self):
        parser = build_parser()
        assert "figure1" in parser.format_help()

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure2-right" in output
        assert "E-F2R" in output

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["nonexistent"])

    def test_running_one_quick_experiment(self, capsys):
        assert main(["figure2-left"]) == 0
        output = capsys.readouterr().out
        assert "Area A" in output

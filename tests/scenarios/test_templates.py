"""The shipped template library: parity, equivalence and tier smoke runs."""

import pytest

from repro.scenarios.catalog import BUILTIN_SCENARIOS
from repro.scenarios.schema import (
    CURRENT_SCHEMA_VERSION,
    compile_template,
    discover_templates,
    find_template,
    load_template,
    template_record_json,
    verify_template,
)
from repro.scenarios.schema.model import parse_template, template_to_dict

TEMPLATES = {
    load_template(path).name: load_template(path) for path in discover_templates()
}


class TestLibraryShape:
    def test_every_catalog_scenario_has_a_template(self):
        assert BUILTIN_SCENARIOS <= set(TEMPLATES)

    def test_library_ships_a_campaign_example(self):
        assert any(t.campaign is not None for t in TEMPLATES.values())

    def test_every_template_declares_current_schema_version(self):
        for template in TEMPLATES.values():
            assert template.schema_version == CURRENT_SCHEMA_VERSION

    def test_every_template_declares_all_tiers(self):
        for template in TEMPLATES.values():
            assert template.tier_names() == ["small", "medium", "large"]

    def test_find_template_by_name(self):
        assert find_template("marketplace").name == "marketplace"

    def test_round_trip_is_identity(self):
        for template in TEMPLATES.values():
            assert parse_template(template_to_dict(template)) == template


class TestCompilation:
    @pytest.mark.parametrize("tier", (None, "small", "medium", "large"))
    def test_every_template_compiles_at_every_tier(self, tier):
        for template in TEMPLATES.values():
            compiled = compile_template(template, tier)
            assert compiled.config.rounds >= 1

    def test_medium_tier_matches_robustness_reference(self):
        compiled = compile_template(TEMPLATES["collusion-ring"], "medium")
        config = compiled.config
        assert (config.n_users, config.rounds, config.seed) == (40, 30, 0)
        assert config.malicious_fraction == 0.25
        assert (config.detect_threshold, config.recovery_fraction) == (0.1, 0.8)

    def test_long_horizon_drift_large_tier_is_10k_rounds(self):
        compiled = compile_template(TEMPLATES["long-horizon-drift"], "large")
        assert compiled.config.rounds == 10000


class TestGoldenRecords:
    @pytest.mark.parametrize("name", sorted(BUILTIN_SCENARIOS))
    def test_catalog_templates_byte_identical_to_programmatic_path(self, name):
        result = verify_template(TEMPLATES[name], "small")
        assert result.mode == "catalog-equivalence"
        assert result.ok, result.detail

    def test_campaign_template_self_consistent(self):
        result = verify_template(TEMPLATES["double-cross"], "small")
        assert result.mode == "self-consistency"
        assert result.ok, result.detail

    def test_records_byte_identical_across_backends(self):
        python_json = template_record_json(
            compile_template(TEMPLATES["double-cross"], "small", backend="python")
        )
        vector_json = template_record_json(
            compile_template(TEMPLATES["double-cross"], "small", backend="vectorized")
        )
        assert python_json == vector_json

    def test_small_tier_smoke_runs_produce_metrics(self):
        for name in ("marketplace", "flash-crowd", "regional-partition"):
            record_json = template_record_json(compile_template(TEMPLATES[name], "small"))
            assert f'"{name}.eigentrust.separation_attack"' in record_json

"""Tests for the scenario catalog and the end-to-end scenario runner."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.campaign import SetOnline, SwitchBehavior, Whitewash
from repro.scenarios.catalog import (
    SYBIL_PREFIX,
    attack_window,
    build_campaign,
    get_scenario,
    inject_sybils,
    scenario_names,
    setup_scenario_graph,
)
from repro.scenarios.runner import ScenarioRunConfig, run_scenario
from repro.simulation.churn import PhasedChurnModel
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network


class TestAttackWindow:
    def test_leaves_lead_and_tail(self):
        start, end = attack_window(20)
        assert 0 < start < end <= 20

    def test_tiny_round_budgets_still_valid(self):
        for rounds in (1, 2, 3):
            start, end = attack_window(rounds)
            assert 0 < start <= end <= rounds

    def test_zero_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            attack_window(0)


class TestCatalog:
    def test_names_are_stable(self):
        assert scenario_names() == [
            "baseline",
            "collusion-ring",
            "whitewash-wave",
            "traitor-oscillation",
            "slander",
            "sybil-burst",
            "collusion-under-churn",
            "marketplace",
            "flash-crowd",
            "regional-partition",
            "long-horizon-drift",
        ]

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            get_scenario("teleport-attack")

    def test_unknown_knob_raises(self):
        with pytest.raises(ConfigurationError):
            build_campaign("collusion-ring", rounds=12, warp_factor=9)

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("rounds", (4, 12, 30))
    def test_every_entry_builds_within_budget(self, name, rounds):
        campaign = build_campaign(name, rounds=rounds)
        start, end = campaign.window
        assert 0 <= start <= end <= rounds
        for event in campaign.events:
            assert 0 <= event.round_index <= rounds

    def test_knob_overrides_reach_the_campaign(self):
        short = build_campaign("whitewash-wave", rounds=20, wave_period=1)
        long = build_campaign("whitewash-wave", rounds=20, wave_period=10)
        short_waves = [e for e in short.events if isinstance(e, Whitewash)]
        long_waves = [e for e in long.events if isinstance(e, Whitewash)]
        assert len(short_waves) > len(long_waves) >= 1

    def test_traitor_oscillation_alternates(self):
        campaign = build_campaign("traitor-oscillation", rounds=20, build_rounds=2, betray_rounds=2)
        switches = [e for e in campaign.events if isinstance(e, SwitchBehavior)]
        assert len(switches) >= 4  # initial grooming + several phase flips

    def test_collusion_under_churn_carries_phased_churn(self):
        campaign = build_campaign("collusion-under-churn", rounds=20)
        assert isinstance(campaign.churn, PhasedChurnModel)
        assert campaign.churn.phases
        start, end = campaign.window
        assert campaign.churn.phases[0].start == start
        assert campaign.churn.phases[0].end == end

    def test_sybil_burst_keeps_cohort_dormant_then_bursts(self):
        campaign = build_campaign("sybil-burst", rounds=20)
        online_events = [e for e in campaign.events if isinstance(e, SetOnline)]
        assert online_events[0].round_index == 0 and not online_events[0].online
        assert any(e.online for e in online_events)


class TestSybilInjection:
    def test_inject_sybils_wires_clique_and_victims(self):
        graph = generate_social_network(SocialNetworkSpec(n_users=20, seed=1))
        sybils = inject_sybils(graph, random.Random(0), n_sybils=4, attach_degree=2)
        assert len(sybils) == 4
        assert len(graph) == 24
        for user in sybils:
            assert not user.is_honest
            neighbors = graph.neighbors(user.user_id)
            fellow = [n for n in neighbors if n.startswith(SYBIL_PREFIX)]
            victims = [n for n in neighbors if not n.startswith(SYBIL_PREFIX)]
            assert len(fellow) == 3  # clique
            assert len(victims) >= 2

    def test_setup_scenario_graph_noop_for_plain_scenarios(self):
        graph = generate_social_network(SocialNetworkSpec(n_users=10, seed=1))
        setup_scenario_graph("collusion-ring", graph, random.Random(0))
        assert len(graph) == 10

    def test_invalid_counts_rejected(self):
        graph = generate_social_network(SocialNetworkSpec(n_users=10, seed=1))
        with pytest.raises(ConfigurationError):
            inject_sybils(graph, random.Random(0), n_sybils=0, attach_degree=2)
        with pytest.raises(ConfigurationError):
            inject_sybils(graph, random.Random(0), n_sybils=2, attach_degree=0)


class TestRunScenario:
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_scenario_runs_and_measures(self, name):
        result = run_scenario(scenario=name, mechanism="average", n_users=18, rounds=8, seed=5)
        metrics = result.robustness
        assert len(result.trace.observations) == 8
        for value in (
            metrics.baseline_separation,
            metrics.attack_separation,
            metrics.post_separation,
            metrics.final_rank_correlation,
        ):
            assert -1.0 <= value <= 1.0
        assert metrics.time_to_detect >= -1
        assert metrics.time_to_recover >= -1

    def test_same_seed_same_metrics(self):
        first = run_scenario(
            scenario="collusion-ring", mechanism="eigentrust", n_users=18, rounds=8, seed=5
        )
        second = run_scenario(
            scenario="collusion-ring", mechanism="eigentrust", n_users=18, rounds=8, seed=5
        )
        assert first.robustness == second.robustness
        assert first.final_scores == second.final_scores

    def test_whitewash_wave_actually_resets_identities(self):
        result = run_scenario(
            scenario="whitewash-wave", mechanism="average", n_users=18, rounds=10, seed=5
        )
        generations = [
            peer.identity_generation
            for peer in result.simulation.directory.peers()
            if not peer.user.is_honest
        ]
        assert max(generations) >= 1

    def test_sybils_only_transact_during_the_window(self):
        result = run_scenario(
            scenario="sybil-burst", mechanism="average", n_users=18, rounds=12, seed=5
        )
        start, end = result.campaign.window
        directory = result.simulation.directory
        sybil_rounds = {
            t.time
            for t in result.simulation.transactions
            if directory.get(t.provider).base_id.startswith(SYBIL_PREFIX)
            or directory.get(t.consumer).base_id.startswith(SYBIL_PREFIX)
        }
        assert sybil_rounds  # the burst did happen
        assert all(start <= r < end for r in sybil_rounds)

    def test_preset_overrides_population(self):
        result = run_scenario(
            ScenarioRunConfig(
                scenario="baseline",
                mechanism="none",
                preset="village",
                rounds=4,
                seed=2,
            )
        )
        assert len(result.graph) == 25  # the village preset size, not n_users

    def test_adversarial_lab_preset_exists(self):
        from repro.socialnet.presets import NETWORK_PRESETS

        spec = NETWORK_PRESETS["adversarial-lab"]
        assert spec.malicious_fraction >= 0.3

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            run_scenario(ScenarioRunConfig(), scenario="slander")

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(ConfigurationError):
            ScenarioRunConfig(scenario="nope")

"""Unit tests for the robustness metrics and the accuracy primitives."""

import pytest

from repro.reputation.accuracy import score_separation, spearman_rank_correlation
from repro.scenarios.metrics import NEVER, RoundObservation, evaluate_trace


def observation(round_index, separation, malicious_rate=0.2):
    return RoundObservation(
        round_index=round_index,
        honest_mean=0.5 + separation / 2,
        attacker_mean=0.5 - separation / 2,
        separation=separation,
        rank_correlation=separation,
        malicious_rate=malicious_rate,
        online_peers=10,
    )


class TestSpearman:
    def test_perfect_agreement(self):
        scores = {"a": 0.1, "b": 0.5, "c": 0.9}
        truth = {"a": 0.2, "b": 0.4, "c": 0.8}
        assert spearman_rank_correlation(scores, truth) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        scores = {"a": 0.9, "b": 0.5, "c": 0.1}
        truth = {"a": 0.2, "b": 0.4, "c": 0.8}
        assert spearman_rank_correlation(scores, truth) == pytest.approx(-1.0)

    def test_constant_side_returns_zero(self):
        scores = {"a": 0.5, "b": 0.5, "c": 0.5}
        truth = {"a": 0.1, "b": 0.4, "c": 0.8}
        assert spearman_rank_correlation(scores, truth) == 0.0

    def test_too_few_peers_returns_zero(self):
        assert spearman_rank_correlation({"a": 1.0}, {"a": 1.0}) == 0.0
        assert spearman_rank_correlation({}, {}) == 0.0

    def test_ties_get_average_ranks(self):
        # x = (1, 2.5, 2.5, 4), y = (1, 2, 3, 4): rho = 0.9486...
        scores = {"a": 0.1, "b": 0.5, "c": 0.5, "d": 0.9}
        truth = {"a": 0.1, "b": 0.2, "c": 0.3, "d": 0.4}
        rho = spearman_rank_correlation(scores, truth)
        assert rho == pytest.approx(0.9486832980505138)

    def test_ignores_peers_without_ground_truth(self):
        scores = {"a": 0.1, "b": 0.9, "ghost": 0.5}
        truth = {"a": 0.1, "b": 0.9}
        assert spearman_rank_correlation(scores, truth) == pytest.approx(1.0)


class TestScoreSeparation:
    def test_separates_classes(self):
        scores = {"good": 0.8, "bad": 0.2}
        truth = {"good": 0.9, "bad": 0.1}
        assert score_separation(scores, truth) == pytest.approx(0.6)

    def test_empty_class_returns_zero(self):
        assert score_separation({"good": 0.8}, {"good": 0.9}) == 0.0
        assert score_separation({}, {}) == 0.0


class TestEvaluateTrace:
    def test_empty_trace(self):
        metrics = evaluate_trace([], (0, 0))
        assert metrics.time_to_detect == NEVER
        assert metrics.time_to_recover == NEVER
        assert metrics.final_separation == 0.0

    def test_detection_and_recovery_timing(self):
        observations = [
            observation(0, 0.3),
            observation(1, 0.3),
            # attack window [2, 5): separation collapses, then detection
            observation(2, 0.0),
            observation(3, 0.05),
            observation(4, 0.15),
            # post-attack: recovery to 80% of the 0.3 baseline (0.24)
            observation(5, 0.1),
            observation(6, 0.25),
            observation(7, 0.3),
        ]
        metrics = evaluate_trace(observations, (2, 5), detect_threshold=0.1)
        assert metrics.baseline_separation == pytest.approx(0.3)
        assert metrics.time_to_detect == 2  # round 4 is 2 rounds after start
        assert metrics.time_to_recover == 1  # round 6 is 1 round after end
        assert metrics.attack_separation == pytest.approx((0.0 + 0.05 + 0.15) / 3)
        assert metrics.post_separation == pytest.approx((0.1 + 0.25 + 0.3) / 3)
        assert metrics.final_separation == pytest.approx(0.3)
        assert metrics.detected and metrics.recovered

    def test_never_detected_or_recovered(self):
        observations = [observation(i, 0.01) for i in range(8)]
        metrics = evaluate_trace(observations, (2, 5), detect_threshold=0.1)
        assert metrics.time_to_detect == NEVER
        assert metrics.time_to_recover == NEVER
        assert not metrics.detected and not metrics.recovered

    def test_recovery_target_never_below_detect_threshold(self):
        # No pre-attack baseline: recovery still requires the detect level.
        observations = [observation(0, 0.0), observation(1, 0.05), observation(2, 0.2)]
        metrics = evaluate_trace(observations, (0, 1), detect_threshold=0.1)
        assert metrics.baseline_separation == 0.0
        assert metrics.time_to_recover == 1  # round 2, not the trivial round 1

    def test_window_after_run_end_means_never(self):
        observations = [observation(i, 0.5) for i in range(4)]
        metrics = evaluate_trace(observations, (10, 12))
        # Detection anchors at round >= 10, which the run never reached.
        assert metrics.time_to_detect == NEVER
        assert metrics.time_to_recover == NEVER
        assert metrics.baseline_separation == pytest.approx(0.5)

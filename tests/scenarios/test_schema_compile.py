"""Tests for template → runnable-config compilation."""

import pytest

from repro.errors import TemplateError
from repro.scenarios.campaign import SelectGroup, SetOnline, SwitchBehavior, Whitewash
from repro.scenarios.catalog import (
    CATALOG,
    build_campaign,
    register_scenario,
    unregister_scenario,
)
from repro.scenarios.runner import run_scenario
from repro.scenarios.schema.compile import (
    compile_campaign,
    compile_template,
    resolve_round,
)
from repro.scenarios.schema.model import parse_template
from test_schema_model import campaign_doc, minimal_doc


@pytest.fixture(autouse=True)
def _clean_registered_scenarios():
    before = set(CATALOG)
    yield
    for name in set(CATALOG) - before:
        unregister_scenario(name)


class TestRoundResolution:
    def test_int_positions_pass_through(self):
        assert resolve_round(7, 30) == 7

    def test_fractions_scale_with_rounds(self):
        assert resolve_round(0.5, 30) == 15
        assert resolve_round(0.5, 10) == 5
        assert resolve_round(0.0, 30) == 0
        assert resolve_round(1.0, 30) == 30


class TestCatalogCompilation:
    def test_catalog_ref_resolves(self):
        compiled = compile_template(parse_template(minimal_doc()))
        assert compiled.config.scenario == "collusion-ring"
        assert compiled.config.n_users == 40
        assert compiled.config.rounds == 30
        assert compiled.tier is None

    def test_tier_overrides_sizing(self):
        doc = minimal_doc(tiers={"small": {"n_users": 12, "rounds": 8}})
        compiled = compile_template(parse_template(doc), "small")
        assert compiled.config.n_users == 12
        assert compiled.config.rounds == 8
        assert compiled.tier == "small"

    def test_tier_knobs_merge_over_template_knobs(self):
        doc = minimal_doc(tiers={"large": {"knobs": {"ring_fraction": 0.9}}})
        doc["scenario"]["knobs"] = {"ring_fraction": 0.5, "density": 0.7}
        compiled = compile_template(parse_template(doc), "large")
        assert compiled.config.knobs == {"ring_fraction": 0.9, "density": 0.7}

    def test_undeclared_tier_rejected(self):
        with pytest.raises(TemplateError) as excinfo:
            compile_template(parse_template(minimal_doc()), "large")
        assert excinfo.value.path == "tiers"

    def test_unknown_catalog_scenario(self):
        doc = minimal_doc()
        doc["scenario"]["catalog"] = "teleport-attack"
        with pytest.raises(TemplateError) as excinfo:
            compile_template(parse_template(doc))
        assert excinfo.value.path == "scenario"

    def test_unknown_catalog_knob(self):
        doc = minimal_doc()
        doc["scenario"]["knobs"] = {"warp_factor": 9}
        with pytest.raises(TemplateError) as excinfo:
            compile_template(parse_template(doc))
        assert excinfo.value.path == "scenario"

    def test_mechanism_and_backend_overrides(self):
        compiled = compile_template(
            parse_template(minimal_doc()), mechanism="beta", backend="python"
        )
        assert compiled.config.mechanism == "beta"
        assert compiled.config.backend == "python"

    def test_preset_network(self):
        doc = minimal_doc(network={"preset": "village"})
        compiled = compile_template(parse_template(doc))
        assert compiled.config.preset == "village"

    def test_preset_with_tier_n_users_rejected(self):
        doc = minimal_doc(
            network={"preset": "village"}, tiers={"small": {"n_users": 10}}
        )
        with pytest.raises(TemplateError) as excinfo:
            compile_template(parse_template(doc), "small")
        assert excinfo.value.path == "tiers.small.n_users"


class TestCampaignCompilation:
    def test_events_materialize_with_scaled_rounds(self):
        template = parse_template(campaign_doc())
        campaign = compile_campaign("example-campaign", template.campaign, 20)
        assert [type(event) for event in campaign.events] == [
            SelectGroup, SwitchBehavior, SetOnline, Whitewash,
        ]
        assert [event.round_index for event in campaign.events] == [0, 5, 10, 15]
        assert campaign.window == (5, 15)

    def test_churn_phases_scale(self):
        template = parse_template(campaign_doc())
        campaign = compile_campaign("example-campaign", template.campaign, 20)
        assert campaign.churn is not None
        phase = campaign.churn.phases[0]
        assert (phase.start, phase.end) == (5, 15)
        assert phase.leave_probability == 0.3

    def test_fractional_one_clamps_to_final_round(self):
        doc = campaign_doc()
        doc["campaign"]["events"][-1]["round"] = 1.0
        template = parse_template(doc)
        campaign = compile_campaign("example-campaign", template.campaign, 20)
        assert campaign.events[-1].round_index == 19

    def test_absolute_round_beyond_budget_rejected(self):
        doc = campaign_doc()
        doc["campaign"]["events"][2]["round"] = 25
        template = parse_template(doc)
        with pytest.raises(TemplateError) as excinfo:
            compile_campaign("example-campaign", template.campaign, 20)
        assert excinfo.value.path == "campaign.events[2].round"

    def test_unknown_behavior_rejected_with_path(self):
        doc = campaign_doc()
        doc["campaign"]["events"][1]["behavior"] = "quantum"
        template = parse_template(doc)
        with pytest.raises(TemplateError) as excinfo:
            compile_campaign("example-campaign", template.campaign, 20)
        assert excinfo.value.path == "campaign.events[1].behavior"

    def test_unknown_behavior_args_rejected(self):
        doc = campaign_doc()
        doc["campaign"]["events"][1]["args"] = {"gravity": 9.8}
        template = parse_template(doc)
        with pytest.raises(TemplateError) as excinfo:
            compile_campaign("example-campaign", template.campaign, 20)
        assert excinfo.value.path == "campaign.events[1].behavior"

    def test_collapsing_churn_phase_rejected(self):
        doc = campaign_doc()
        doc["campaign"]["churn"]["phases"] = [{"start": 0.5, "end": 0.52}]
        template = parse_template(doc)
        with pytest.raises(TemplateError) as excinfo:
            compile_campaign("example-campaign", template.campaign, 10)
        assert excinfo.value.path.startswith("campaign.churn.phases[0]")


class TestCampaignRegistration:
    def test_compile_registers_and_runs(self):
        compiled = compile_template(parse_template(campaign_doc()), "small")
        assert compiled.config.scenario == "example-campaign"
        assert "example-campaign" in CATALOG
        result = run_scenario(compiled.config)
        assert result.campaign.name == "example-campaign"
        assert result.robustness is not None

    def test_recompile_replaces_stale_campaign(self):
        doc = campaign_doc()
        compile_template(parse_template(doc))
        assert build_campaign("example-campaign", rounds=20).window == (5, 15)
        doc["campaign"]["window"] = {"start": 0.5, "end": 1.0}
        compile_template(parse_template(doc))
        assert build_campaign("example-campaign", rounds=20).window == (10, 20)

    def test_builtin_name_collision_rejected(self):
        doc = campaign_doc(name="baseline")
        with pytest.raises(TemplateError) as excinfo:
            compile_template(parse_template(doc))
        assert excinfo.value.path == "name"

    def test_tier_knobs_on_campaign_template_rejected(self):
        doc = campaign_doc()
        doc["tiers"]["small"]["knobs"] = {"ring_fraction": 0.5}
        with pytest.raises(TemplateError) as excinfo:
            compile_template(parse_template(doc), "small")
        assert excinfo.value.path == "tiers.small.knobs"

    def test_campaigns_with_churn_build_fresh_models(self):
        compile_template(parse_template(campaign_doc()))
        first = build_campaign("example-campaign", rounds=20)
        second = build_campaign("example-campaign", rounds=20)
        assert first.churn is not second.churn

    def test_register_scenario_api_guards(self):
        from repro.scenarios.catalog import ScenarioSpec, baseline

        spec = ScenarioSpec(name="transient", description="", build=baseline)
        register_scenario(spec)
        with pytest.raises(Exception):
            register_scenario(spec)
        register_scenario(spec, replace=True)
        unregister_scenario("transient")
        assert "transient" not in CATALOG
        with pytest.raises(Exception):
            unregister_scenario("baseline")

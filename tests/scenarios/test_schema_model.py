"""Tests for the declarative scenario template model and strict validator."""

import json

import pytest

from repro.errors import TemplateError
from repro.scenarios.schema.model import (
    CURRENT_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    TIER_NAMES,
    migrate_document,
    parse_template,
    template_from_text,
    template_to_dict,
)


def minimal_doc(**overrides):
    doc = {
        "schema_version": 1,
        "name": "example",
        "scenario": {"catalog": "collusion-ring"},
    }
    doc.update(overrides)
    return doc


def campaign_doc(**overrides):
    doc = {
        "schema_version": 1,
        "name": "example-campaign",
        "description": "a declarative campaign",
        "network": {"n_users": 30, "topology": "erdos_renyi", "malicious_fraction": 0.2},
        "run": {"mechanism": "beta", "seed": 3, "rounds": 20},
        "metrics": {"detect_threshold": 0.05, "recovery_fraction": 0.9},
        "campaign": {
            "window": {"start": 0.25, "end": 0.75},
            "groups": {"ring": {"population": "dishonest", "fraction": 0.5}},
            "events": [
                {"round": 0, "action": "select", "group": "ring"},
                {"round": 0.25, "action": "switch", "group": "ring", "behavior": "collusive",
                 "args": {"density": 0.8}},
                {"round": 0.5, "action": "set-online", "group": "ring", "online": False,
                 "pin": True},
                {"round": 0.75, "action": "whitewash", "group": "ring"},
            ],
            "churn": {
                "leave_probability": 0.02,
                "phases": [{"start": 0.25, "end": 0.75, "leave_probability": 0.3}],
            },
        },
        "tiers": {"small": {"n_users": 12, "rounds": 8}, "medium": {}},
    }
    doc.update(overrides)
    return doc


def error_path(excinfo) -> str:
    return excinfo.value.path


class TestDefaults:
    def test_minimal_document_fills_defaults(self):
        template = parse_template(minimal_doc())
        assert template.schema_version == CURRENT_SCHEMA_VERSION
        assert template.network.n_users == 40
        assert template.network.topology == "barabasi_albert"
        assert template.network.malicious_fraction == 0.25
        assert template.run.mechanism == "eigentrust"
        assert template.run.rounds == 30
        assert template.run.seed == 0
        assert template.metrics.detect_threshold == 0.1
        assert template.metrics.recovery_fraction == 0.8
        assert template.catalog is not None
        assert template.catalog.name == "collusion-ring"
        assert template.campaign is None
        assert template.tiers == {}

    def test_campaign_document_parses(self):
        template = parse_template(campaign_doc())
        assert template.catalog is None
        assert template.campaign is not None
        assert template.campaign.window == (0.25, 0.75)
        assert [event.action for event in template.campaign.events] == [
            "select", "switch", "set-online", "whitewash",
        ]
        assert template.campaign.churn is not None
        assert template.campaign.churn.phases[0].leave_probability == 0.3
        assert template.tier_names() == ["small", "medium"]


class TestRoundTrip:
    @pytest.mark.parametrize("doc_builder", (minimal_doc, campaign_doc))
    def test_parse_serialize_parse_is_identity(self, doc_builder):
        template = parse_template(doc_builder())
        serialized = template_to_dict(template)
        assert parse_template(serialized) == template

    def test_serialized_form_is_json_safe(self):
        serialized = template_to_dict(parse_template(campaign_doc()))
        reparsed = json.loads(json.dumps(serialized))
        assert parse_template(reparsed) == parse_template(campaign_doc())


class TestStrictness:
    def test_unknown_top_level_field(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(surprise=1))
        assert error_path(excinfo) == "surprise"

    def test_unknown_nested_field_has_dotted_path(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(run={"roundz": 10}))
        assert error_path(excinfo) == "run.roundz"

    def test_wrong_type_has_path(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(run={"rounds": "thirty"}))
        assert error_path(excinfo) == "run.rounds"

    def test_bool_is_not_an_int(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(run={"seed": True}))
        assert error_path(excinfo) == "run.seed"

    def test_fraction_out_of_range(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(network={"malicious_fraction": 1.5}))
        assert error_path(excinfo) == "network.malicious_fraction"

    def test_unknown_topology(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(network={"topology": "torus"}))
        assert error_path(excinfo) == "network.topology"

    def test_preset_excludes_explicit_fields(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(network={"preset": "village", "n_users": 10}))
        assert error_path(excinfo) == "network.n_users"

    def test_event_error_has_indexed_path(self):
        doc = campaign_doc()
        doc["campaign"]["events"][1] = {
            "round": 0.25, "action": "switch", "group": "ring",
        }
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert error_path(excinfo) == "campaign.events[1].behavior"

    def test_unknown_action(self):
        doc = campaign_doc()
        doc["campaign"]["events"][0]["action"] = "explode"
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert error_path(excinfo) == "campaign.events[0].action"

    def test_unknown_population(self):
        doc = campaign_doc()
        doc["campaign"]["groups"]["ring"]["population"] = "martians"
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert error_path(excinfo) == "campaign.groups.ring.population"

    def test_fraction_and_count_exclusive(self):
        doc = campaign_doc()
        doc["campaign"]["groups"]["ring"]["count"] = 3
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert error_path(excinfo) == "campaign.groups.ring"

    def test_undeclared_group_reference(self):
        doc = campaign_doc()
        doc["campaign"]["events"][1]["group"] = "ghosts"
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert error_path(excinfo) == "campaign.events[1].group"

    def test_group_never_selected(self):
        doc = campaign_doc()
        del doc["campaign"]["events"][0]
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert "never resolved by a select event" in str(excinfo.value)

    def test_fractional_round_out_of_unit_interval(self):
        doc = campaign_doc()
        doc["campaign"]["events"][0]["round"] = 1.5
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert error_path(excinfo) == "campaign.events[0].round"

    def test_unknown_tier_name(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(tiers={"gigantic": {}}))
        assert error_path(excinfo) == "tiers.gigantic"

    def test_tier_field_error_path(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(tiers={"large": {"rounds": 0}}))
        assert error_path(excinfo) == "tiers.large.rounds"

    def test_scenario_and_campaign_are_exclusive(self):
        doc = campaign_doc()
        doc["scenario"] = {"catalog": "baseline"}
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert "exactly one" in str(excinfo.value)

    def test_one_of_scenario_or_campaign_is_required(self):
        doc = minimal_doc()
        del doc["scenario"]
        with pytest.raises(TemplateError):
            parse_template(doc)

    def test_knob_values_must_be_scalars(self):
        doc = minimal_doc()
        doc["scenario"]["knobs"] = {"ring_fraction": [0.1, 0.2]}
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert error_path(excinfo) == "scenario.knobs.ring_fraction"

    def test_slash_in_name_rejected(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(name="a/b"))
        assert error_path(excinfo) == "name"


class TestVersioning:
    def test_supported_versions_include_current(self):
        assert CURRENT_SCHEMA_VERSION in SUPPORTED_SCHEMA_VERSIONS

    def test_current_version_passes_through(self):
        doc = minimal_doc()
        assert migrate_document(doc) is doc

    def test_unsupported_version_rejected(self):
        with pytest.raises(TemplateError) as excinfo:
            parse_template(minimal_doc(schema_version=99))
        assert error_path(excinfo) == "schema_version"

    def test_missing_version_rejected(self):
        doc = minimal_doc()
        del doc["schema_version"]
        with pytest.raises(TemplateError) as excinfo:
            parse_template(doc)
        assert error_path(excinfo) == "schema_version"


class TestTextLoading:
    def test_yaml_text(self):
        text = (
            "schema_version: 1\n"
            "name: example\n"
            "scenario:\n"
            "  catalog: collusion-ring\n"
        )
        template = template_from_text(text)
        assert template.name == "example"

    def test_json_text(self):
        template = template_from_text(json.dumps(minimal_doc()), format="json")
        assert template.catalog.name == "collusion-ring"

    def test_malformed_json(self):
        with pytest.raises(TemplateError) as excinfo:
            template_from_text("{not json", format="json")
        assert "malformed JSON" in str(excinfo.value)

    def test_malformed_yaml(self):
        with pytest.raises(TemplateError) as excinfo:
            template_from_text("a: [unclosed")
        assert "malformed YAML" in str(excinfo.value)

    def test_unknown_format(self):
        with pytest.raises(TemplateError):
            template_from_text("x", format="toml")

    def test_non_mapping_document(self):
        with pytest.raises(TemplateError) as excinfo:
            template_from_text("[1, 2]", format="json")
        assert "must be a mapping" in str(excinfo.value)


class TestTierNames:
    def test_canonical_order(self):
        assert TIER_NAMES == ("small", "medium", "large")

    def test_tier_names_sorted_canonically(self):
        doc = minimal_doc(tiers={"large": {}, "small": {}})
        assert parse_template(doc).tier_names() == ["small", "large"]

"""Unit tests for the attack-campaign model and its round-hook driver."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.campaign import (
    AttackCampaign,
    CampaignDriver,
    PeerSelector,
    SelectGroup,
    SetOnline,
    SwitchBehavior,
    Whitewash,
    combine,
)
from repro.scenarios.metrics import ScenarioTrace
from repro.simulation.adversary import GroomingBehavior, MaliciousBehavior
from repro.simulation.churn import ChurnModel, PhasedChurnModel
from repro.simulation.engine import InteractionSimulator, SimulationConfig
from repro.simulation.peer import Peer
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network
from repro.socialnet.user import User


def make_peers(n=10, dishonest_every=3):
    peers = []
    for i in range(n):
        honesty = 0.1 if i % dishonest_every == 0 else 0.9
        peers.append(Peer(user=User(user_id=f"u{i:02d}", honesty=honesty)))
    return peers


class TestPeerSelector:
    def test_population_validation(self):
        with pytest.raises(ConfigurationError):
            PeerSelector(population="martians")

    def test_fraction_and_count_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            PeerSelector(fraction=0.5, count=3)

    def test_selects_only_dishonest(self):
        peers = make_peers()
        selected = PeerSelector(population="dishonest").select(peers, random.Random(0))
        assert selected
        assert all(not peer.user.is_honest for peer in selected)

    def test_prefix_filter(self):
        peers = [*make_peers(), Peer(user=User(user_id="sybil-001", honesty=0.0))]
        selected = PeerSelector(population="all", prefix="sybil-").select(peers, random.Random(0))
        assert [peer.base_id for peer in selected] == ["sybil-001"]

    def test_fraction_is_deterministic_and_sorted(self):
        peers = make_peers(12)
        first = PeerSelector(population="honest", fraction=0.5).select(peers, random.Random(5))
        second = PeerSelector(population="honest", fraction=0.5).select(peers, random.Random(5))
        ids = [peer.base_id for peer in first]
        assert ids == [peer.base_id for peer in second]
        assert ids == sorted(ids)

    def test_minimum_is_enforced(self):
        peers = make_peers(12)
        selected = PeerSelector(population="dishonest", fraction=0.0, minimum=2).select(
            peers, random.Random(1)
        )
        assert len(selected) == 2

    def test_count_capped_at_pool(self):
        peers = make_peers(6)
        selected = PeerSelector(population="all", count=50).select(peers, random.Random(0))
        assert len(selected) == 6


class TestCampaign:
    def test_events_sorted_and_window_validated(self):
        events = [
            SwitchBehavior(5, "g", lambda p, g, r: MaliciousBehavior()),
            SelectGroup(2, "g", PeerSelector()),
        ]
        campaign = AttackCampaign(name="x", events=events, window=(2, 5))
        assert [event.round_index for event in campaign.events] == [2, 5]
        assert campaign.events_at(2)[0].group == "g"
        with pytest.raises(ConfigurationError):
            AttackCampaign(name="bad", window=(5, 2))

    def test_negative_event_round_rejected(self):
        with pytest.raises(ConfigurationError):
            AttackCampaign(name="bad", events=[SelectGroup(-1, "g", PeerSelector())])

    def test_combine_namespaces_groups_and_merges_windows(self):
        a = AttackCampaign(name="a", events=[SelectGroup(1, "g", PeerSelector())], window=(1, 4))
        b = AttackCampaign(name="b", events=[SelectGroup(2, "g", PeerSelector())], window=(3, 9))
        merged = combine("both", a, b)
        assert merged.window == (1, 9)
        assert sorted(event.group for event in merged.events) == ["a/g", "b/g"]

    def test_combine_rejects_two_churn_overrides(self):
        a = AttackCampaign(name="a", churn=PhasedChurnModel())
        b = AttackCampaign(name="b", churn=ChurnModel())
        with pytest.raises(ConfigurationError):
            combine("both", a, b)


class TestCampaignDriver:
    def make_simulator(self, campaign, n_users=16, rounds=8, seed=3):
        graph = generate_social_network(
            SocialNetworkSpec(n_users=n_users, malicious_fraction=0.3, seed=seed)
        )
        driver = CampaignDriver(campaign)
        simulator = InteractionSimulator(
            graph, SimulationConfig(rounds=rounds, seed=seed), hooks=(driver,)
        )
        return driver, simulator

    def test_switch_behavior_applies_to_selected_group(self):
        campaign = AttackCampaign(
            name="switch",
            events=[
                SelectGroup(0, "g", PeerSelector(population="dishonest")),
                SwitchBehavior(0, "g", lambda p, g, r: GroomingBehavior()),
            ],
            window=(0, 1),
        )
        driver, simulator = self.make_simulator(campaign, rounds=1)
        simulator.run()
        assert driver.groups["g"]
        for peer in driver.groups["g"]:
            assert peer.behavior.name == "grooming"

    def test_group_reference_before_selection_raises(self):
        driver = CampaignDriver(AttackCampaign(name="x"))
        with pytest.raises(ConfigurationError):
            driver.members("missing")

    def test_pinned_offline_overrides_churn_returns(self):
        campaign = AttackCampaign(
            name="pin",
            events=[
                SelectGroup(0, "g", PeerSelector(population="dishonest")),
                SetOnline(0, "g", online=False, pin=True),
            ],
            window=(0, 8),
        )
        driver, simulator = self.make_simulator(campaign, rounds=8)
        # Default ChurnModel would bring offline peers back with p=0.5.
        result = simulator.run()
        pinned = {peer.base_id for peer in driver.groups["g"]}
        for peer in result.directory.peers():
            if peer.base_id in pinned:
                assert not peer.online
        # Pinned peers provided no transactions.
        providers = {
            result.directory.get(t.provider).base_id for t in result.transactions
        }
        assert not providers & pinned

    def test_unpinning_brings_peers_back(self):
        campaign = AttackCampaign(
            name="burst",
            events=[
                SelectGroup(0, "g", PeerSelector(population="dishonest")),
                SetOnline(0, "g", online=False, pin=True),
                SetOnline(3, "g", online=True),
            ],
            window=(3, 8),
        )
        driver, simulator = self.make_simulator(campaign, rounds=8)
        result = simulator.run()
        group = {peer.base_id for peer in driver.groups["g"]}
        assert all(result.directory.get(base_id).online for base_id in group)

    def test_whitewash_event_resets_identity_and_scores_link(self):
        from repro.scenarios.runner import reputation_for_graph

        graph = generate_social_network(
            SocialNetworkSpec(n_users=16, malicious_fraction=0.3, seed=3)
        )
        campaign = AttackCampaign(
            name="wash",
            events=[
                SelectGroup(0, "g", PeerSelector(population="dishonest")),
                Whitewash(4, "g"),
            ],
            window=(4, 8),
        )
        driver = CampaignDriver(campaign)
        reputation = reputation_for_graph(graph, "average")
        simulator = InteractionSimulator(
            graph,
            SimulationConfig(rounds=8, seed=3),
            reputation=reputation,
            hooks=(driver,),
        )
        simulator.run()
        for peer in driver.groups["g"]:
            assert peer.identity_generation >= 1
            assert "#" in peer.peer_id
            # Both identities keep resolving to the same ground-truth peer.
            assert simulator.directory.get(peer.base_id) is peer
            assert simulator.directory.get(peer.peer_id) is peer


class TestStreamExactness:
    def test_observer_hooks_do_not_perturb_the_trajectory(self):
        graph_a = generate_social_network(
            SocialNetworkSpec(n_users=20, malicious_fraction=0.25, seed=9)
        )
        graph_b = generate_social_network(
            SocialNetworkSpec(n_users=20, malicious_fraction=0.25, seed=9)
        )
        bare = InteractionSimulator(graph_a, SimulationConfig(rounds=10, seed=9))
        traced = InteractionSimulator(
            graph_b, SimulationConfig(rounds=10, seed=9), hooks=(ScenarioTrace(),)
        )
        result_bare = bare.run()
        result_traced = traced.run()
        key = lambda t: (t.transaction_id, t.consumer, t.provider, t.quality)  # noqa: E731
        assert [key(t) for t in result_bare.transactions] == [
            key(t) for t in result_traced.transactions
        ]


def test_set_online_without_pin_releases_an_earlier_pin():
    campaign = AttackCampaign(
        name="release",
        events=[
            SelectGroup(0, "g", PeerSelector(population="dishonest")),
            SetOnline(0, "g", online=False, pin=True),
            SetOnline(3, "g", online=False, pin=False),
        ],
        window=(0, 8),
    )
    graph = generate_social_network(SocialNetworkSpec(n_users=16, malicious_fraction=0.3, seed=3))
    driver = CampaignDriver(campaign)
    # return_probability=1.0: natural churn rejoins unpinned offline peers
    # on the very next round.
    config = SimulationConfig(rounds=8, churn=ChurnModel(return_probability=1.0), seed=3)
    simulator = InteractionSimulator(graph, config, hooks=(driver,))
    result = simulator.run()
    assert not driver.pinned_offline
    group = {peer.base_id for peer in driver.groups["g"]}
    assert all(result.directory.get(base_id).online for base_id in group)

"""Shared scenario setup: cache reuse, mutation guards, campaign memoization."""

import pytest

from repro.core import accel
from repro.scenarios.catalog import build_campaign, clear_campaign_cache
from repro.scenarios.runner import ScenarioRunConfig, run_scenario
from repro.scenarios.setup import (
    build_scenario_setup,
    clear_setup_cache,
    scenario_setup,
)
from repro.socialnet.generators import (
    SocialNetworkSpec,
    cached_social_network,
    clear_network_cache,
    generate_social_network,
)
from repro.socialnet.user import User, standard_profile


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_network_cache()
    clear_setup_cache()
    clear_campaign_cache()
    yield
    clear_network_cache()
    clear_setup_cache()
    clear_campaign_cache()


SPEC = SocialNetworkSpec(n_users=16, seed=3)


class TestNetworkCache:
    def test_same_spec_shares_one_instance(self):
        assert cached_social_network(SPEC) is cached_social_network(
            SocialNetworkSpec(n_users=16, seed=3)
        )

    def test_different_seed_is_a_different_network(self):
        assert cached_social_network(SPEC) is not cached_social_network(
            SocialNetworkSpec(n_users=16, seed=4)
        )

    def test_cached_equals_fresh_generation(self):
        shared = cached_social_network(SPEC)
        fresh = generate_social_network(SPEC)
        assert shared.user_ids() == fresh.user_ids()
        assert {
            uid: shared.neighbors(uid) for uid in shared.user_ids()
        } == {uid: fresh.neighbors(uid) for uid in fresh.user_ids()}

    def test_mutated_entry_is_regenerated_not_reused(self):
        shared = cached_social_network(SPEC)
        user = User(user_id="intruder", profile=standard_profile("intruder"))
        shared.add_user(user)
        regenerated = cached_social_network(SPEC)
        assert regenerated is not shared
        assert "intruder" not in regenerated

    def test_disabled_flag_generates_fresh(self):
        with accel.override(setup_cache=False):
            first = cached_social_network(SPEC)
            second = cached_social_network(SPEC)
        assert first is not second

    def test_copy_is_structurally_identical_and_independent(self):
        shared = cached_social_network(SPEC)
        duplicate = shared.copy()
        assert duplicate.user_ids() == shared.user_ids()
        assert all(
            duplicate.neighbors(uid) == shared.neighbors(uid) for uid in shared.user_ids()
        )
        duplicate.add_user(User(user_id="extra", profile=standard_profile("extra")))
        assert "extra" not in shared


class TestScenarioSetupCache:
    def test_setup_shared_across_mechanism_columns(self):
        config_a = ScenarioRunConfig(
            scenario="collusion-ring", mechanism="eigentrust", n_users=14, rounds=6, seed=2
        )
        config_b = ScenarioRunConfig(
            scenario="collusion-ring", mechanism="beta", n_users=14, rounds=6, seed=2
        )
        assert scenario_setup(config_a).graph is scenario_setup(config_b).graph

    def test_sybil_scenario_does_not_pollute_the_base_network(self):
        config = ScenarioRunConfig(
            scenario="sybil-burst", mechanism="average", n_users=14, rounds=10, seed=2
        )
        setup = scenario_setup(config)
        assert any(uid.startswith("sybil-") for uid in setup.graph.user_ids())
        base = cached_social_network(
            SocialNetworkSpec(
                n_users=config.n_users,
                topology=config.topology,
                malicious_fraction=config.malicious_fraction,
                seed=config.seed,
            )
        )
        assert not any(uid.startswith("sybil-") for uid in base.user_ids())

    def test_cached_setup_matches_fresh_build(self):
        config = ScenarioRunConfig(
            scenario="sybil-burst", mechanism="average", n_users=14, rounds=10, seed=2
        )
        cached = scenario_setup(config)
        with accel.override(setup_cache=False):
            fresh = build_scenario_setup(config)
        assert cached.graph.user_ids() == fresh.graph.user_ids()
        assert [entry[0] for entry in cached.plan.entries] == [
            entry[0] for entry in fresh.plan.entries
        ]
        cached_behaviors = [type(factory()) for _, factory in cached.plan.entries]
        fresh_behaviors = [type(factory()) for _, factory in fresh.plan.entries]
        assert cached_behaviors == fresh_behaviors

    def test_run_scenario_results_identical_with_and_without_setup_cache(self):
        kwargs = dict(
            scenario="whitewash-wave", mechanism="eigentrust", n_users=14, rounds=8, seed=4
        )
        shared = run_scenario(**kwargs)
        clear_network_cache()
        clear_setup_cache()
        with accel.override(setup_cache=False):
            fresh = run_scenario(**kwargs)
        assert shared.robustness == fresh.robustness
        assert shared.final_scores == fresh.final_scores


class TestCampaignMemo:
    def test_same_arguments_return_same_campaign(self):
        first = build_campaign("collusion-ring", rounds=12)
        second = build_campaign("collusion-ring", rounds=12)
        assert first is second

    def test_different_knobs_build_different_campaigns(self):
        base = build_campaign("collusion-ring", rounds=12)
        dense = build_campaign("collusion-ring", rounds=12, density=0.5)
        assert base is not dense

    def test_churn_carrying_campaigns_are_never_shared(self):
        # A PhasedChurnModel counts rounds; two simulators constructed
        # before either runs would corrupt a shared counter, so campaigns
        # with a churn override must be fresh per build.
        first = build_campaign("collusion-under-churn", rounds=12)
        second = build_campaign("collusion-under-churn", rounds=12)
        assert first is not second
        assert first.churn is not second.churn

    def test_interleaved_construction_keeps_churn_phases_correct(self):
        # Regression: construct A, construct B, run A, run B — B must see
        # the churn spike at its scheduled rounds, not a drained counter.
        kwargs = dict(
            scenario="collusion-under-churn", mechanism="none", n_users=14, rounds=10, seed=6
        )
        reference = run_scenario(**kwargs)
        config_a = ScenarioRunConfig(**kwargs)
        config_b = ScenarioRunConfig(**kwargs)
        # run_scenario builds simulators internally; emulate interleaving by
        # building both campaigns first, then running both configs.
        build_campaign("collusion-under-churn", rounds=10)
        first = run_scenario(config_a)
        second = run_scenario(config_b)
        online_series = [
            [observation.online_peers for observation in result.trace.observations]
            for result in (reference, first, second)
        ]
        assert online_series[0] == online_series[1] == online_series[2]

    def test_memoized_campaign_backs_repeated_runs(self):
        kwargs = dict(
            scenario="collusion-under-churn", mechanism="average", n_users=14, rounds=8, seed=1
        )
        first = run_scenario(**kwargs)
        second = run_scenario(**kwargs)
        # The stateful phased churn model is rewound per run, so a shared
        # campaign object yields identical trajectories.
        assert first.robustness == second.robustness

"""Tests for the ``scenario`` CLI subcommands."""

import json

import pytest

from repro.scenarios.schema.cli import main


class TestList:
    def test_lists_shipped_templates(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "collusion-ring" in out
        assert "double-cross" in out
        assert "campaign" in out


class TestValidate:
    def test_shipped_templates_validate(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["validate", "--catalog", "--report", str(report_path)]) == 0
        assert "templates valid" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["parity_errors"] == []
        assert all(entry["ok"] for entry in report["templates"])

    def test_broken_template_fails_with_error_path(self, capsys, tmp_path):
        bad = tmp_path / "bad.yaml"
        bad.write_text(
            "schema_version: 1\nname: bad\nscenario:\n  catalog: collusion-ring\n"
            "run:\n  roundz: 5\n"
        )
        assert main(["--dir", str(tmp_path), "validate"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "run.roundz" in out

    def test_catalog_parity_failure_lists_missing_names(self, capsys, tmp_path):
        only = tmp_path / "baseline.yaml"
        only.write_text(
            "schema_version: 1\nname: baseline\nscenario:\n  catalog: baseline\n"
        )
        assert main(["--dir", str(tmp_path), "validate", "--catalog"]) == 1
        out = capsys.readouterr().out
        assert "PARITY FAIL" in out
        assert "collusion-ring" in out

    def test_explicit_paths_limit_the_check(self, capsys, tmp_path):
        good = tmp_path / "one.yaml"
        good.write_text(
            "schema_version: 1\nname: one\nscenario:\n  catalog: baseline\n"
        )
        assert main(["validate", str(good)]) == 0


class TestVerify:
    def test_verifies_named_template(self, capsys, tmp_path):
        report_path = tmp_path / "verify.json"
        code = main(
            ["verify", "baseline", "--tier", "small", "--report", str(report_path)]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["results"][0]["mode"] == "catalog-equivalence"

    def test_unknown_template_name_errors(self, capsys):
        assert main(["verify", "no-such-template"]) == 2
        assert "no template named" in capsys.readouterr().err


class TestRun:
    def test_writes_deterministic_records(self, capsys, tmp_path):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        base = ["run", "double-cross", "--tier", "small"]
        assert main([*base, "--backend", "python", "--out", str(out_a)]) == 0
        assert main([*base, "--backend", "vectorized", "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        payload = json.loads(out_a.read_text())
        assert payload["records"][0]["params"]["scenario"] == "double-cross"

    def test_csv_output(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(["run", "baseline", "--tier", "small", "--csv", str(csv_path)])
        assert code == 0
        header = csv_path.read_text().splitlines()[0]
        assert "param_scenario" in header

    def test_runs_template_from_path(self, capsys, tmp_path):
        path = tmp_path / "inline.yaml"
        path.write_text(
            "schema_version: 1\nname: inline\nscenario:\n  catalog: baseline\n"
            "run:\n  rounds: 4\n"
        )
        assert main(["run", str(path)]) == 0
        assert '"status": "ok"' in capsys.readouterr().out

    def test_stdout_payload_is_record_json(self, capsys):
        assert main(["run", "baseline", "--tier", "small"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1


class TestRunCheckpointResume:
    def test_checkpointed_and_resumed_runs_match_direct(self, capsys, tmp_path):
        base = ["run", "traitor-oscillation", "--tier", "small", "--mechanism", "beta"]
        direct = tmp_path / "direct.json"
        assert main([*base, "--out", str(direct)]) == 0

        checkpoint = tmp_path / "run.ckpt"
        checkpointed = tmp_path / "checkpointed.json"
        assert (
            main(
                [
                    *base,
                    "--checkpoint-every",
                    "5",
                    "--checkpoint",
                    str(checkpoint),
                    "--out",
                    str(checkpointed),
                ]
            )
            == 0
        )
        assert checkpointed.read_bytes() == direct.read_bytes()

        # The final checkpoint sits at the last round; a resume finishes the
        # (already complete) run and must emit the very same bytes.
        resumed = tmp_path / "resumed.json"
        assert main(["run", "--resume", str(checkpoint), "--out", str(resumed)]) == 0
        assert resumed.read_bytes() == direct.read_bytes()

    def test_checkpoint_every_requires_checkpoint_path(self, capsys):
        assert main(["run", "baseline", "--tier", "small", "--checkpoint-every", "5"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_run_without_template_or_resume_errors(self, capsys):
        assert main(["run"]) == 2
        assert "template" in capsys.readouterr().err

    def test_resume_of_foreign_file_errors(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.ckpt"
        bogus.write_bytes(b"not a checkpoint\n")
        assert main(["run", "--resume", str(bogus)]) == 2
        assert "checkpoint" in capsys.readouterr().err

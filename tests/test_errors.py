"""The exception hierarchy: every library error is a ReproError."""

import pytest

from repro import errors


def test_all_exceptions_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name


def test_unknown_peer_is_also_key_error():
    assert issubclass(errors.UnknownPeerError, KeyError)


def test_unknown_data_is_also_key_error():
    assert issubclass(errors.UnknownDataError, KeyError)


def test_access_denied_is_privacy_violation():
    assert issubclass(errors.AccessDeniedError, errors.PrivacyViolationError)


def test_catching_base_catches_specific():
    with pytest.raises(errors.ReproError):
        raise errors.AllocationError("no provider")

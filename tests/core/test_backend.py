"""Unit tests for the array-backed compute core (repro.core.backend)."""

import pytest

from repro.core import backend as bk
from repro.core.coupling import STATE_VARIABLES, CouplingDynamics, CouplingState
from repro.errors import ConfigurationError

numpy = pytest.importorskip("numpy")


class TestBackendSelection:
    def test_auto_resolves_to_vectorized_with_numpy(self):
        assert bk.resolve_backend("auto") == bk.VECTORIZED_BACKEND

    def test_explicit_names_pass_through(self):
        assert bk.resolve_backend("python") == "python"
        assert bk.resolve_backend("vectorized") == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            bk.resolve_backend("cuda")

    def test_available_backends_include_python(self):
        assert "python" in bk.available_backends()


class TestPeerIndex:
    def test_round_trip(self):
        index = bk.PeerIndex(["b", "a", "c"])
        assert len(index) == 3
        assert index.position("a") == 1
        assert index.ids == ["b", "a", "c"]
        assert "c" in index and "z" not in index

    def test_from_ids_sorts(self):
        assert bk.PeerIndex.from_ids({"b", "a"}).ids == ["a", "b"]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            bk.PeerIndex(["a", "a"])

    def test_unknown_position_raises(self):
        with pytest.raises(ConfigurationError):
            bk.PeerIndex(["a"]).position("b")

    def test_vector_dict_round_trip(self):
        index = bk.PeerIndex(["a", "b"])
        vector = index.dict_to_vector({"a": 0.25, "b": 0.75})
        assert vector.tolist() == [0.25, 0.75]
        assert index.vector_to_dict(vector) == {"a": 0.25, "b": 0.75}

    def test_permutation_marks_unknown_ids(self):
        index = bk.PeerIndex(["a", "b"])
        assert index.permutation(["b", "ghost", "a"]).tolist() == [1, -1, 0]


def _as_dense(matrix):
    """Dense view of a local-trust matrix regardless of its storage."""
    return matrix.toarray() if hasattr(matrix, "toarray") else matrix


class TestLocalTrustMatrix:
    def test_rows_are_normalized_and_negatives_clipped(self):
        # rater 0: +2 about subject 1, net -1 about subject 2 (clipped to 0).
        matrix = bk.local_trust_matrix(
            3, [0, 0, 0], [1, 1, 2], [1.0, 1.0, -1.0]
        )
        dense = _as_dense(matrix)
        assert dense[0].tolist() == [0.0, 1.0, 0.0]
        assert dense[1].tolist() == [0.0, 0.0, 0.0]  # dangling row stays zero

    def test_small_populations_use_dense_storage(self):
        # Below the threshold the builder returns a plain array even with
        # scipy installed: CSR dispatch overhead dominates tiny matvecs.
        small = bk.local_trust_matrix(3, [0], [1], [1.0])
        assert isinstance(small, numpy.ndarray)

    @pytest.mark.skipif(not bk.HAS_SCIPY, reason="sparse storage needs scipy")
    def test_large_populations_use_sparse_storage(self):
        n = bk.DENSE_TRUST_THRESHOLD
        big = bk.local_trust_matrix(n, [0], [1], [1.0])
        assert hasattr(big, "toarray")

    def test_dense_and_sparse_builders_agree(self):
        raters = [0, 1, 1, 2, 0]
        subjects = [1, 0, 2, 0, 2]
        deltas = [1.0, 2.0, -1.0, 1.0, 3.0]
        dense = bk.dense_local_trust_matrix(3, raters, subjects, deltas)
        built = _as_dense(bk.local_trust_matrix(3, raters, subjects, deltas))
        assert numpy.allclose(dense, built)

    def test_empty_evidence_gives_all_dangling(self):
        matrix = bk.local_trust_matrix(2, [], [], [])
        trust, iterations = bk.power_iteration(
            matrix,
            numpy.array([0.5, 0.5]),
            restart_weight=0.15,
            max_iterations=50,
            tolerance=1e-10,
        )
        # Everything dangles, so the restart distribution is stationary.
        assert trust.tolist() == [0.5, 0.5]
        assert iterations == 1


class TestPowerIteration:
    def test_matches_hand_rolled_reference(self):
        rng = numpy.random.default_rng(3)
        n = 8
        matrix = rng.random((n, n))
        matrix[2] = 0.0  # one dangling peer
        sums = matrix.sum(axis=1, keepdims=True)
        matrix = numpy.where(sums > 0, matrix / numpy.where(sums > 0, sums, 1), 0.0)
        restart = numpy.full(n, 1.0 / n)

        trust, _ = bk.power_iteration(
            matrix, restart, restart_weight=0.2, max_iterations=500, tolerance=1e-14
        )
        # Reference: explicit scalar implementation of the same recurrence.
        reference = restart.copy()
        for _ in range(500):
            updated = numpy.zeros(n)
            for i in range(n):
                if matrix[i].sum() <= 0:
                    updated += reference[i] * restart
                else:
                    updated += reference[i] * matrix[i]
            blended = 0.8 * updated + 0.2 * restart
            if numpy.abs(blended - reference).sum() < 1e-14:
                reference = blended
                break
            reference = blended
        assert numpy.allclose(trust, reference, atol=1e-12)
        assert trust.sum() == pytest.approx(1.0)


class TestScoreKernels:
    def test_mean_scores(self):
        values = bk.mean_scores([0, 0, 1], [1.0, 0.0, 1.0], 2)
        assert values.tolist() == [0.5, 1.0]

    def test_beta_scores_match_scalar_formula(self):
        # subject 0: positives at t=0 and t=2, negative at t=2.
        values = bk.beta_scores(
            [0, 0, 0],
            [0.0, 2.0, 2.0],
            [True, True, False],
            forgetting=0.5,
            n_subjects=1,
        )
        alpha = 1.0 + 0.5 ** 2 + 1.0
        beta = 1.0 + 1.0
        assert values[0] == pytest.approx(alpha / (alpha + beta))

    def test_minmax_rescale_flat_is_half(self):
        assert bk.minmax_rescale(numpy.array([0.3, 0.3])).tolist() == [0.5, 0.5]

    def test_minmax_rescale_spans_unit_interval(self):
        scaled = bk.minmax_rescale(numpy.array([1.0, 3.0, 2.0]))
        assert scaled.tolist() == [0.0, 1.0, 0.5]


class TestCouplingKernels:
    def test_single_step_is_bitwise_identical_to_python(self):
        dynamics = CouplingDynamics(backend="python")
        state = CouplingState(trust=0.3, satisfaction=0.7, disclosure=0.9)
        stepped = dynamics.step(state)
        vector = numpy.array([getattr(state, name) for name in STATE_VARIABLES])
        kernel = bk.coupling_step(vector, **dynamics._kernel_params())
        assert kernel.tolist() == [getattr(stepped, name) for name in STATE_VARIABLES]

    def test_run_trajectories_identical_across_backends(self):
        python_path = CouplingDynamics(backend="python").run()
        kernel_path = CouplingDynamics(backend="vectorized").run()
        assert len(python_path) == len(kernel_path)
        assert all(a.as_dict() == b.as_dict() for a, b in zip(python_path, kernel_path, strict=True))

    def test_equilibria_match_per_state_runs(self):
        dynamics = CouplingDynamics(backend="vectorized")
        initials = [CouplingState(trust=0.1), CouplingState(disclosure=0.9)]
        batched = dynamics.equilibria(initials)
        singles = [dynamics.equilibrium(state) for state in initials]
        assert [s.as_dict() for s in batched] == [s.as_dict() for s in singles]

    def test_equilibria_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            bk.coupling_equilibria(
                numpy.zeros((2, 3)),
                steps=5,
                tolerance=1e-6,
                sharing_level=0.8,
                mechanism_power=0.9,
                policy_respect=1.0,
                trustworthy_fraction=0.8,
                damping=0.3,
                privacy_weight=1.0,
                reputation_weight=1.0,
                satisfaction_weight=1.0,
            )


class TestSimulationKernels:
    def test_interaction_counts_match_scalar_rule(self):
        activities = [0.0, 0.4, 1.0, 2.5]
        draws = [0.9, 0.39, 0.01, 0.6]
        counts = bk.interaction_counts(activities, 1.0, draws)
        expected = []
        for activity, draw in zip(activities, draws, strict=True):
            base = int(activity)
            expected.append(base + (1 if draw < activity - base else 0))
        assert counts.tolist() == expected

    def test_lexicographic_argmax_breaks_ties_by_second_key(self):
        assert bk.lexicographic_argmax([0.5, 0.9, 0.9], [0.99, 0.2, 0.3]) == 2
        assert bk.lexicographic_argmax([0.5, 0.9, 0.9], [0.99, 0.4, 0.3]) == 1

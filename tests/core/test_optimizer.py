"""Unit tests for the Section-4 settings optimizer."""

import pytest

from repro.errors import ConfigurationError
from repro.core.config import SystemSettings
from repro.core.facets import FacetScores
from repro.core.optimizer import (
    FacetConstraints,
    TrustOptimizer,
)
from repro.core.tradeoff import SettingsExplorer


class TestFacetConstraints:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FacetConstraints(min_privacy=1.5)

    def test_satisfaction_check_and_violations(self):
        constraints = FacetConstraints(min_privacy=0.5, min_reputation=0.4)
        good = FacetScores(privacy=0.6, reputation=0.5, satisfaction=0.1)
        bad = FacetScores(privacy=0.2, reputation=0.5, satisfaction=0.9)
        assert constraints.satisfied_by(good)
        assert not constraints.satisfied_by(bad)
        assert constraints.violations(bad) == ["privacy"]
        assert constraints.violations(good) == []


class TestTrustOptimizer:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TrustOptimizer(coarse_resolution=1)
        with pytest.raises(ConfigurationError):
            TrustOptimizer(refine_rounds=-1)
        with pytest.raises(ConfigurationError):
            TrustOptimizer(mechanisms=())

    def test_unconstrained_search_finds_a_setting(self):
        result = TrustOptimizer(refine_rounds=1).optimize()
        assert result.found
        assert result.evaluated == len(result.trace)
        assert 0.0 <= result.best.trust <= 1.0
        summary = result.summary()
        assert summary["found"] is True
        assert summary["reputation_mechanism"] in TrustOptimizer().mechanisms

    def test_optimizer_matches_or_beats_the_plain_sweep(self):
        explorer = SettingsExplorer()
        sweep_best = explorer.best(explorer.sweep_sharing_levels(resolution=41))
        result = TrustOptimizer(refine_rounds=2).optimize()
        assert result.best.trust >= sweep_best.trust - 1e-6

    def test_constraints_are_respected_by_every_feasible_point(self):
        constraints = FacetConstraints(min_privacy=0.6, min_reputation=0.5)
        result = TrustOptimizer(refine_rounds=1).optimize(constraints)
        assert result.found
        for point in result.feasible:
            assert point.facets.privacy >= 0.6
            assert point.facets.reputation >= 0.5

    def test_tight_privacy_constraint_lowers_the_chosen_sharing_level(self):
        lax = TrustOptimizer(refine_rounds=1).optimize(FacetConstraints())
        strict = TrustOptimizer(refine_rounds=1).optimize(FacetConstraints(min_privacy=0.75))
        assert strict.found
        assert strict.best.settings.sharing_level <= lax.best.settings.sharing_level
        assert strict.best.facets.privacy >= 0.75

    def test_infeasible_constraints_report_no_solution(self):
        impossible = FacetConstraints(min_privacy=0.99, min_reputation=0.99, min_satisfaction=0.99)
        result = TrustOptimizer(refine_rounds=0).optimize(impossible)
        assert not result.found
        assert result.feasible == []
        assert result.summary() == {"found": False, "evaluated": result.evaluated}
        with pytest.raises(ConfigurationError):
            result.best_settings()

    def test_mechanism_restriction_is_honoured(self):
        result = TrustOptimizer(mechanisms=("beta",), refine_rounds=0).optimize()
        assert result.found
        assert result.best.settings.reputation_mechanism == "beta"
        assert all(point.settings.reputation_mechanism == "beta" for point in result.trace)

    def test_anonymity_can_be_disallowed(self):
        result = TrustOptimizer(allow_anonymous=False, refine_rounds=0).optimize()
        assert all(not point.settings.anonymous_feedback for point in result.trace)

    def test_custom_evaluator_is_used(self):
        constant = FacetScores(privacy=0.9, reputation=0.9, satisfaction=0.9)
        optimizer = TrustOptimizer(evaluator=lambda settings: constant, refine_rounds=0)
        result = optimizer.optimize()
        assert result.best.facets == constant

    def test_base_settings_fields_are_preserved(self):
        base = SystemSettings(privacy_weight=3.0, area_a_threshold=0.4)
        result = TrustOptimizer(base_settings=base, refine_rounds=0).optimize()
        assert result.best.settings.privacy_weight == 3.0
        assert result.best.settings.area_a_threshold == 0.4

"""Unit tests for the Section-3 coupling dynamics."""

import pytest

from repro.errors import ConfigurationError
from repro.core.coupling import (
    STATE_VARIABLES,
    CouplingDynamics,
    CouplingState,
    coupling_matrix,
)


class TestCouplingState:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CouplingState(trust=1.5)

    def test_as_dict_and_distance(self):
        state = CouplingState()
        assert set(state.as_dict()) == set(STATE_VARIABLES)
        other = CouplingState(trust=0.9)
        assert state.distance(other) == pytest.approx(0.4)
        assert state.distance(state) == 0.0


class TestDynamics:
    def test_damping_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CouplingDynamics(damping=0.0)

    def test_step_keeps_state_in_bounds(self):
        dynamics = CouplingDynamics()
        state = CouplingState(trust=1.0, satisfaction=0.0, disclosure=1.0)
        for _ in range(10):
            state = dynamics.step(state)
            for name in STATE_VARIABLES:
                assert 0.0 <= getattr(state, name) <= 1.0

    def test_run_converges_to_fixed_point(self):
        dynamics = CouplingDynamics()
        trajectory = dynamics.run(steps=500, tolerance=1e-9)
        assert len(trajectory) < 501
        last, previous = trajectory[-1], trajectory[-2]
        assert last.distance(previous) < 1e-8

    def test_equilibrium_independent_of_start(self):
        dynamics = CouplingDynamics()
        from_low = dynamics.equilibrium(CouplingState(trust=0.0, satisfaction=0.0))
        from_high = dynamics.equilibrium(CouplingState(trust=1.0, satisfaction=1.0))
        assert from_low.distance(from_high) < 1e-4

    def test_run_validates_steps(self):
        with pytest.raises(ConfigurationError):
            CouplingDynamics().run(steps=0)

    def test_better_mechanism_raises_equilibrium_trust(self):
        weak = CouplingDynamics(mechanism_power=0.2).equilibrium()
        strong = CouplingDynamics(mechanism_power=0.95).equilibrium()
        assert strong.trust > weak.trust
        assert strong.reputation_efficiency > weak.reputation_efficiency

    def test_sharing_level_trades_privacy_for_reputation(self):
        closed = CouplingDynamics(sharing_level=0.1).equilibrium()
        open_ = CouplingDynamics(sharing_level=1.0).equilibrium()
        assert open_.reputation_efficiency > closed.reputation_efficiency
        assert open_.privacy_satisfaction < closed.privacy_satisfaction

    def test_policy_breaches_lower_satisfaction_and_trust(self):
        respected = CouplingDynamics(policy_respect=1.0).equilibrium()
        breached = CouplingDynamics(policy_respect=0.3).equilibrium()
        assert breached.satisfaction < respected.satisfaction
        assert breached.trust < respected.trust

    def test_untrustworthy_majority_lowers_trust_not_contribution(self):
        healthy = CouplingDynamics(trustworthy_fraction=0.9).equilibrium()
        hostile = CouplingDynamics(trustworthy_fraction=0.2).equilibrium()
        assert hostile.trust < healthy.trust
        assert hostile.honest_contribution > 0.3


class TestCouplingMatrix:
    def test_matrix_covers_all_pairs(self):
        matrix = coupling_matrix(CouplingDynamics())
        assert set(matrix) == set(STATE_VARIABLES)
        for source, row in matrix.items():
            assert set(row) == set(STATE_VARIABLES) - {source}

    def test_key_signs_match_the_paper(self):
        matrix = coupling_matrix(CouplingDynamics())
        assert matrix["satisfaction"]["trust"] > 0
        assert matrix["trust"]["satisfaction"] > 0
        assert matrix["reputation_efficiency"]["trust"] > 0
        assert matrix["trust"]["honest_contribution"] > 0
        assert matrix["disclosure"]["privacy_satisfaction"] < 0
        assert matrix["disclosure"]["reputation_efficiency"] > 0
        assert matrix["privacy_satisfaction"]["satisfaction"] > 0
        assert matrix["trust"]["disclosure"] > 0

    def test_perturbation_validated(self):
        with pytest.raises(ConfigurationError):
            coupling_matrix(CouplingDynamics(), perturbation=1.5)

"""Unit tests for the acceleration switchboard."""

import pytest

from repro.core import accel
from repro.errors import ConfigurationError


class TestFlags:
    def test_defaults(self):
        flags = accel.AccelFlags()
        assert flags.incremental_refresh
        assert flags.setup_cache
        assert not flags.run_cache
        assert not flags.disable_all

    def test_override_restores_previous_state(self):
        before = accel.flags()
        with accel.override(incremental_refresh=False, run_cache=True) as inside:
            assert not inside.incremental_refresh
            assert inside.run_cache
        assert accel.flags() == before

    def test_override_restores_on_error(self):
        before = accel.flags()
        with pytest.raises(RuntimeError), accel.override(setup_cache=False):
            raise RuntimeError("boom")
        assert accel.flags() == before

    def test_disable_all_wins_over_individual_flags(self):
        with accel.override(run_cache=True, disable_all=True) as flags:
            assert not flags.incremental_refresh
            assert not flags.setup_cache
            assert not flags.run_cache

    def test_nested_overrides(self):
        with accel.override(incremental_refresh=False):
            with accel.override(run_cache=True) as inner:
                assert not inner.incremental_refresh
                assert inner.run_cache
            assert not accel.flags().incremental_refresh
            assert not accel.flags().run_cache


class TestEnvParsing:
    def test_tokens(self):
        flags, _ = accel._from_env("no-incremental,run-cache")
        assert not flags.incremental_refresh
        assert flags.run_cache
        assert flags.setup_cache

    def test_off_token_sets_master_switch(self):
        flags, _ = accel._from_env("off")
        assert flags.disable_all
        assert not flags.effective().incremental_refresh

    def test_empty_and_whitespace_tokens_ignored(self):
        assert accel._from_env(" , ,on,")[0] == accel.AccelFlags()

    def test_unknown_token_rejected(self):
        with pytest.raises(ConfigurationError):
            accel._from_env("warp-speed")

    def test_from_env_tracks_explicit_fields(self):
        _, explicit = accel._from_env("no-run-cache")
        assert explicit == {"run_cache"}
        _, explicit = accel._from_env("")
        assert explicit == frozenset()

    def test_env_disabled_honours_explicit_opt_out(self, monkeypatch):
        monkeypatch.delenv("REPRO_ACCEL", raising=False)
        assert not accel.env_disabled("run_cache")  # default off != opted out
        monkeypatch.setenv("REPRO_ACCEL", "no-run-cache")
        assert accel.env_disabled("run_cache")
        assert not accel.env_disabled("incremental_refresh")
        monkeypatch.setenv("REPRO_ACCEL", "off")
        assert accel.env_disabled("run_cache")
        monkeypatch.setenv("REPRO_ACCEL", "run-cache")
        assert not accel.env_disabled("run_cache")

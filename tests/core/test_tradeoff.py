"""Unit tests for the settings explorer and analytic facet model (Figure 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.core.config import SystemSettings
from repro.core.facets import FacetScores
from repro.core.metric import Aggregator
from repro.core.tradeoff import (
    MECHANISM_PROFILES,
    AnalyticFacetModel,
    SettingsExplorer,
)


class TestAnalyticFacetModel:
    def test_every_known_mechanism_has_a_profile(self):
        model = AnalyticFacetModel()
        for mechanism in MECHANISM_PROFILES:
            facets = model(SystemSettings(reputation_mechanism=mechanism))
            assert isinstance(facets, FacetScores)

    def test_unknown_mechanism_rejected(self):
        model = AnalyticFacetModel(mechanism_profiles={"beta": (0.7, 0.3)})
        with pytest.raises(ConfigurationError):
            model.mechanism_profile("eigentrust")

    def test_privacy_monotonically_non_increasing_in_sharing(self):
        model = AnalyticFacetModel()
        values = [
            model(SystemSettings(sharing_level=level)).privacy
            for level in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(a >= b for a, b in zip(values, values[1:], strict=False))

    def test_reputation_monotonically_non_decreasing_in_sharing(self):
        model = AnalyticFacetModel()
        values = [
            model(SystemSettings(sharing_level=level)).reputation
            for level in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(a <= b for a, b in zip(values, values[1:], strict=False))

    def test_anonymous_feedback_raises_privacy_and_lowers_reputation(self):
        model = AnalyticFacetModel()
        identified = model(SystemSettings(sharing_level=0.8, anonymous_feedback=False))
        anonymous = model(SystemSettings(sharing_level=0.8, anonymous_feedback=True))
        assert anonymous.privacy > identified.privacy
        assert anonymous.reputation < identified.reputation

    def test_stronger_mechanisms_need_more_information(self):
        power_eigen, info_eigen = MECHANISM_PROFILES["eigentrust"]
        power_avg, info_avg = MECHANISM_PROFILES["average"]
        assert power_eigen > power_avg
        assert info_eigen > info_avg

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AnalyticFacetModel(privacy_concern=1.5)
        with pytest.raises(ConfigurationError):
            AnalyticFacetModel(evidence_rate=0.0)


class TestSettingsExplorer:
    @pytest.fixture()
    def sweep(self):
        return SettingsExplorer().sweep_sharing_levels(resolution=21)

    def test_sweep_covers_the_unit_interval(self, sweep):
        assert sweep[0].sharing_level == 0.0
        assert sweep[-1].sharing_level == 1.0
        assert len(sweep) == 21

    def test_resolution_validated(self):
        with pytest.raises(ConfigurationError):
            SettingsExplorer().sweep_sharing_levels(resolution=1)

    def test_trust_is_single_peaked_at_an_interior_optimum(self, sweep):
        best = SettingsExplorer.best(sweep)
        assert 0.0 < best.sharing_level < 1.0

    def test_best_of_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            SettingsExplorer.best([])

    def test_area_a_is_nonempty_and_excludes_extremes(self, sweep):
        area = SettingsExplorer.area_a(sweep)
        assert area
        sharing_levels = {point.sharing_level for point in area}
        assert 0.0 not in sharing_levels
        assert all(point.facets.meets(0.5) for point in area)

    def test_iso_satisfaction_pairs_exist(self):
        explorer = SettingsExplorer()
        points = explorer.sweep_sharing_levels(resolution=41)
        pairs = explorer.iso_satisfaction_pairs(points)
        assert pairs
        first, second = pairs[0]
        assert abs(first.facets.satisfaction - second.facets.satisfaction) <= 0.02
        assert abs(first.sharing_level - second.sharing_level) > 0.1

    def test_pareto_front_is_mutually_nondominated(self, sweep):
        front = SettingsExplorer.pareto_front(sweep)
        assert front
        for candidate in front:
            for other in front:
                if other is candidate:
                    continue
                dominates = (
                    other.facets.privacy >= candidate.facets.privacy
                    and other.facets.reputation >= candidate.facets.reputation
                    and other.facets.satisfaction >= candidate.facets.satisfaction
                    and (
                        other.facets.privacy > candidate.facets.privacy
                        or other.facets.reputation > candidate.facets.reputation
                        or other.facets.satisfaction > candidate.facets.satisfaction
                    )
                )
                assert not dominates

    def test_sweep_settings_accepts_explicit_grid(self):
        explorer = SettingsExplorer()
        grid = [SystemSettings(sharing_level=0.3), SystemSettings(sharing_level=0.9)]
        points = explorer.sweep_settings(grid)
        assert [point.sharing_level for point in points] == [0.3, 0.9]

    def test_aggregator_changes_the_optimum(self):
        sweep_geometric = SettingsExplorer(aggregator=Aggregator.GEOMETRIC).sweep_sharing_levels(
            resolution=41
        )
        sweep_minimum = SettingsExplorer(aggregator=Aggregator.MINIMUM).sweep_sharing_levels(
            resolution=41
        )
        best_geometric = SettingsExplorer.best(sweep_geometric)
        best_minimum = SettingsExplorer.best(sweep_minimum)
        assert best_minimum.sharing_level <= best_geometric.sharing_level

    def test_custom_evaluator_is_used(self):
        constant = FacetScores(privacy=0.5, reputation=0.5, satisfaction=0.5)
        explorer = SettingsExplorer(evaluator=lambda settings: constant)
        points = explorer.sweep_sharing_levels(resolution=3)
        assert all(point.facets == constant for point in points)

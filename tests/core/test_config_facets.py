"""Unit tests for system settings and facet scores."""

import pytest

from repro.errors import ConfigurationError
from repro.core.config import SystemSettings
from repro.core.facets import (
    FacetScores,
    privacy_facet,
    reputation_facet,
    satisfaction_facet,
)
from repro.privacy.disclosure import DisclosureLedger, DisclosureRecord
from repro.privacy.purposes import Purpose


class TestSystemSettings:
    def test_defaults_valid(self):
        settings = SystemSettings()
        assert settings.reputation_mechanism == "eigentrust"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemSettings(sharing_level=1.5)
        with pytest.raises(ConfigurationError):
            SystemSettings(reputation_mechanism="blockchain")
        with pytest.raises(ConfigurationError):
            SystemSettings(privacy_weight=-1.0)
        with pytest.raises(ConfigurationError):
            SystemSettings(privacy_weight=0, reputation_weight=0, satisfaction_weight=0)

    def test_normalized_weights_sum_to_one(self):
        settings = SystemSettings(
            privacy_weight=2.0, reputation_weight=1.0, satisfaction_weight=1.0
        )
        weights = settings.normalized_weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["privacy"] == pytest.approx(0.5)

    def test_with_sharing_level_copies(self):
        settings = SystemSettings(sharing_level=0.8)
        changed = settings.with_sharing_level(0.2)
        assert changed.sharing_level == 0.2
        assert settings.sharing_level == 0.8
        assert changed.reputation_mechanism == settings.reputation_mechanism

    def test_with_mechanism(self):
        assert SystemSettings().with_mechanism("beta").reputation_mechanism == "beta"

    def test_describe_contains_settable_aspects(self):
        description = SystemSettings().describe()
        assert {"sharing_level", "reputation_mechanism", "weights"} <= set(description)

    def test_settings_are_immutable(self):
        with pytest.raises(AttributeError):
            SystemSettings().sharing_level = 0.1


class TestFacetScores:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FacetScores(privacy=1.2, reputation=0.5, satisfaction=0.5)

    def test_meets_threshold(self):
        scores = FacetScores(privacy=0.6, reputation=0.7, satisfaction=0.8)
        assert scores.meets(0.6)
        assert not scores.meets(0.65)

    def test_weakest_facet(self):
        scores = FacetScores(privacy=0.6, reputation=0.3, satisfaction=0.8)
        assert scores.weakest_facet() == "reputation"

    def test_as_dict_round_trip(self):
        scores = FacetScores(privacy=0.1, reputation=0.2, satisfaction=0.3)
        assert FacetScores(**scores.as_dict()) == scores


class TestFacetComputations:
    def test_privacy_facet_without_ledger_is_the_guarantee(self):
        value = privacy_facet(sharing_level=0.0, information_requirement=0.9)
        assert value == 1.0
        assert privacy_facet(sharing_level=1.0, information_requirement=1.0) == 0.0

    def test_privacy_facet_decreases_with_sharing(self):
        high = privacy_facet(sharing_level=0.2, information_requirement=0.9)
        low = privacy_facet(sharing_level=1.0, information_requirement=0.9)
        assert high > low

    def test_privacy_facet_with_ledger_blends_measured_outcomes(self):
        ledger = DisclosureLedger()
        ledger.record(
            DisclosureRecord(
                time=0,
                owner="alice",
                recipient="x",
                data_id="alice/a",
                sensitivity=1.0,
                purpose=Purpose.COMMERCIAL,
                policy_compliant=False,
            )
        )
        with_breach = privacy_facet(
            sharing_level=0.5,
            information_requirement=0.5,
            ledger=ledger,
            privacy_concerns={"alice": 1.0},
        )
        clean = privacy_facet(
            sharing_level=0.5,
            information_requirement=0.5,
            ledger=DisclosureLedger(),
            privacy_concerns={"alice": 1.0},
        )
        assert with_breach < clean

    def test_reputation_facet_matches_power(self):
        scores = {"good": 0.9, "bad": 0.1}
        truth = {"good": 0.9, "bad": 0.1}
        assert reputation_facet(scores, truth) > 0.7
        assert reputation_facet({}, truth) <= 0.25

    def test_satisfaction_facet_is_global_satisfaction(self):
        assert satisfaction_facet({"a": 0.8, "b": 0.8}) == pytest.approx(0.8)
        assert satisfaction_facet({}) == 0.0

"""Unit tests for the composite trust metric and the trust model."""

import pytest

from repro.errors import ConfigurationError
from repro.core.config import SystemSettings
from repro.core.facets import FacetScores
from repro.core.metric import Aggregator, CompositeTrustMetric
from repro.core.trust_model import TrustModel


BALANCED = FacetScores(privacy=0.6, reputation=0.6, satisfaction=0.6)
UNBALANCED = FacetScores(privacy=0.05, reputation=0.9, satisfaction=0.9)


class TestCompositeTrustMetric:
    def test_weighted_mean(self):
        metric = CompositeTrustMetric(aggregator=Aggregator.WEIGHTED)
        assert metric.trust(BALANCED) == pytest.approx(0.6)

    def test_geometric_mean(self):
        metric = CompositeTrustMetric(aggregator=Aggregator.GEOMETRIC)
        assert metric.trust(BALANCED) == pytest.approx(0.6)
        scores = FacetScores(privacy=0.25, reputation=1.0, satisfaction=1.0)
        assert metric.trust(scores) == pytest.approx(0.25 ** (1 / 3))

    def test_minimum(self):
        metric = CompositeTrustMetric(aggregator=Aggregator.MINIMUM)
        assert metric.trust(UNBALANCED) == pytest.approx(0.05)

    def test_owa_orders_values(self):
        metric = CompositeTrustMetric(aggregator=Aggregator.OWA, owa_weights=(1.0, 0.0, 0.0))
        assert metric.trust(UNBALANCED) == pytest.approx(0.05)
        metric_top = CompositeTrustMetric(aggregator=Aggregator.OWA, owa_weights=(0.0, 0.0, 1.0))
        assert metric_top.trust(UNBALANCED) == pytest.approx(0.9)

    def test_zero_facet_kills_geometric_but_not_weighted(self):
        zeroed = FacetScores(privacy=0.0, reputation=0.9, satisfaction=0.9)
        geometric = CompositeTrustMetric(aggregator=Aggregator.GEOMETRIC).trust(zeroed)
        weighted = CompositeTrustMetric(aggregator=Aggregator.WEIGHTED).trust(zeroed)
        assert geometric < 0.01
        assert weighted == pytest.approx(0.6)

    def test_weights_change_emphasis(self):
        privacy_heavy = CompositeTrustMetric(
            aggregator=Aggregator.WEIGHTED,
            weights={"privacy": 8.0, "reputation": 1.0, "satisfaction": 1.0},
        )
        assert privacy_heavy.trust(UNBALANCED) < 0.35

    def test_missing_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeTrustMetric(weights={"privacy": 1.0, "reputation": 1.0})

    def test_bad_owa_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeTrustMetric(owa_weights=(0.5, 0.5))

    def test_monotonicity_in_each_facet(self):
        for aggregator in Aggregator:
            metric = CompositeTrustMetric(aggregator=aggregator)
            base = FacetScores(privacy=0.4, reputation=0.5, satisfaction=0.6)
            improved = FacetScores(privacy=0.6, reputation=0.5, satisfaction=0.6)
            assert metric.trust(improved) >= metric.trust(base)

    def test_contributions_identify_the_binding_facet(self):
        metric = CompositeTrustMetric(aggregator=Aggregator.WEIGHTED)
        contributions = metric.contributions(UNBALANCED)
        assert set(contributions) == {"privacy", "reputation", "satisfaction"}
        assert contributions["reputation"] > contributions["privacy"]

    def test_describe(self):
        description = CompositeTrustMetric().describe()
        assert description["aggregator"] == "geometric"
        assert sum(description["weights"].values()) == pytest.approx(1.0)


class TestTrustModel:
    def test_evaluate_produces_bounded_trust_and_area_flag(self):
        model = TrustModel(SystemSettings(area_a_threshold=0.5))
        report = model.evaluate(BALANCED)
        assert 0.0 <= report.global_trust <= 1.0
        assert report.in_area_a
        assert report.facets == BALANCED
        assert set(report.contributions) == {"privacy", "reputation", "satisfaction"}

    def test_area_a_requires_every_facet(self):
        model = TrustModel(SystemSettings(area_a_threshold=0.5))
        assert not model.evaluate(UNBALANCED).in_area_a

    def test_per_user_trust(self):
        model = TrustModel()
        report = model.evaluate(
            BALANCED,
            per_user_facets={
                "alice": FacetScores(privacy=0.9, reputation=0.9, satisfaction=0.9),
                "bob": FacetScores(privacy=0.1, reputation=0.1, satisfaction=0.1),
            },
        )
        assert report.per_user_trust["alice"] > report.per_user_trust["bob"]
        assert 0.0 <= report.mean_user_trust <= 1.0

    def test_mean_user_trust_defaults_to_global(self):
        report = TrustModel().evaluate(BALANCED)
        assert report.mean_user_trust == report.global_trust

    def test_untrustworthy_majority_caps_reputation(self):
        model = TrustModel()
        accurate = FacetScores(privacy=0.7, reputation=0.95, satisfaction=0.7)
        healthy = model.evaluate(accurate, trustworthy_fraction=0.9)
        hostile = model.evaluate(accurate, trustworthy_fraction=0.3)
        assert hostile.facets.reputation == pytest.approx(0.3)
        assert hostile.global_trust < healthy.global_trust

    def test_limiting_facet_named(self):
        report = TrustModel(aggregator=Aggregator.WEIGHTED).evaluate(UNBALANCED)
        assert report.limiting_facet() in {"privacy", "reputation", "satisfaction"}

    def test_weights_come_from_settings(self):
        settings = SystemSettings(
            privacy_weight=5.0, reputation_weight=1.0, satisfaction_weight=1.0
        )
        report = TrustModel(settings, aggregator=Aggregator.WEIGHTED).evaluate(UNBALANCED)
        uniform = TrustModel(aggregator=Aggregator.WEIGHTED).evaluate(UNBALANCED)
        assert report.global_trust < uniform.global_trust

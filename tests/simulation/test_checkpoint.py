"""Checkpoint/resume: RNG snapshots, the file format, and simulator restore."""

import pickle

import pytest

from repro.errors import CheckpointError
from repro.simulation.checkpoint import (
    CHECKPOINT_MAGIC,
    capture_state,
    load_simulator_checkpoint,
    read_checkpoint,
    restore_simulator,
    save_simulator_checkpoint,
    write_checkpoint,
)
from repro.simulation.engine import InteractionSimulator, SimulationConfig
from repro.simulation.rng import RandomStreams
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network


def make_simulator(rounds=10, seed=3, n_users=16):
    graph = generate_social_network(
        SocialNetworkSpec(n_users=n_users, malicious_fraction=0.25, seed=seed)
    )
    return InteractionSimulator(graph, SimulationConfig(rounds=rounds, seed=seed))


class TestRandomStreamsSnapshot:
    def test_snapshot_restore_round_trip(self):
        streams = RandomStreams(42)
        streams.stream("churn").random()
        streams.stream("behavior").random()
        snapshot = streams.snapshot()
        expected = [streams.stream("churn").random() for _ in range(5)]

        fresh = RandomStreams(42)
        fresh.restore(snapshot)
        assert [fresh.stream("churn").random() for _ in range(5)] == expected

    def test_restore_discards_streams_missing_from_snapshot(self):
        streams = RandomStreams(7)
        snapshot = streams.snapshot()  # no streams materialized yet
        streams.stream("extra").random()
        streams.restore(snapshot)
        # After restore, "extra" re-derives from the master seed as if it
        # had never been drawn from.
        assert streams.stream("extra").random() == RandomStreams(7).stream("extra").random()

    def test_new_streams_derive_identically_after_restore(self):
        streams = RandomStreams(11)
        streams.stream("old").random()
        fresh = RandomStreams(11)
        fresh.restore(streams.snapshot())
        assert fresh.stream("new").random() == RandomStreams(11).stream("new").random()

    def test_snapshot_survives_pickling(self):
        """Regression: stream states must round-trip through pickle, since
        checkpoints persist them that way."""
        streams = RandomStreams(13)
        for _ in range(17):
            streams.stream("feedback").random()
        snapshot = pickle.loads(pickle.dumps(streams.snapshot()))
        expected = streams.stream("feedback").random()
        fresh = RandomStreams(13)
        fresh.restore(snapshot)
        assert fresh.stream("feedback").random() == expected

    def test_snapshot_does_not_advance_streams(self):
        streams = RandomStreams(5)
        streams.stream("x").random()
        twin = RandomStreams(5)
        twin.stream("x").random()
        streams.snapshot()
        assert streams.stream("x").random() == twin.stream("x").random()


class TestCheckpointFileFormat:
    def test_round_trip_preserves_payload_and_header(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        payload = {"numbers": [1, 2, 3], "label": "probe"}
        write_checkpoint(path, "probe", payload, round_index=4)
        header, restored = read_checkpoint(path, expected_kind="probe")
        assert restored == payload
        assert header["format"] == CHECKPOINT_MAGIC
        assert header["round_index"] == 4

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_foreign_file_raises(self, tmp_path):
        path = tmp_path / "foreign.ckpt"
        path.write_bytes(b'{"format": "something-else"}\n1234')
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            read_checkpoint(str(path))

    def test_malformed_header_raises(self, tmp_path):
        path = tmp_path / "garbled.ckpt"
        path.write_bytes(b"\x80\x04not json\n")
        with pytest.raises(CheckpointError, match="malformed"):
            read_checkpoint(str(path))

    def test_unknown_version_raises(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, "probe", [1], round_index=0)
        raw = open(path, "rb").read()
        bumped = raw.replace(b'"version": 1', b'"version": 99', 1)
        open(path, "wb").write(bumped)
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(str(path))

    def test_wrong_kind_raises(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, "scenario", [1], round_index=0)
        with pytest.raises(CheckpointError, match="kind"):
            read_checkpoint(path, expected_kind="simulator")

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, "probe", list(range(100)), round_index=0)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-7])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_bit_flip_detected(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, "probe", list(range(100)), round_index=0)
        raw = bytearray(open(path, "rb").read())
        raw[-10] ^= 0x01
        open(path, "wb").write(bytes(raw))
        with pytest.raises(CheckpointError, match="SHA-256"):
            read_checkpoint(path)

    def test_crash_during_write_leaves_previous_checkpoint(self, tmp_path):
        """Atomicity: the visible file never holds a half-written state."""
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, "probe", "first", round_index=1)
        # Simulate a crash mid-write: a stale temp file must not clobber
        # the committed checkpoint.
        (tmp_path / "state.ckpt.tmp").write_bytes(b"partial garbage")
        _, payload = read_checkpoint(path, expected_kind="probe")
        assert payload == "first"


class TestSimulatorCheckpoint:
    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        baseline = make_simulator().run()

        simulator = make_simulator()
        simulator.run_until(5)
        path = str(tmp_path / "mid.ckpt")
        save_simulator_checkpoint(path, simulator)

        resumed = restore_simulator(load_simulator_checkpoint(path))
        resumed.run_until(10)
        result = resumed.result()
        assert result.transactions == baseline.transactions
        assert result.feedbacks == baseline.feedbacks
        assert result.disclosed_feedbacks == baseline.disclosed_feedbacks
        assert result.ground_truth_honesty == baseline.ground_truth_honesty

    def test_capture_does_not_perturb_the_run(self):
        baseline = make_simulator().run()
        simulator = make_simulator()
        for checkpoint_round in (2, 4, 6, 8):
            simulator.run_until(checkpoint_round)
            capture_state(simulator)
        simulator.run_until(10)
        assert simulator.result().transactions == baseline.transactions

    def test_restore_rejects_hook_count_mismatch(self, tmp_path):
        simulator = make_simulator()
        simulator.run_until(3)
        state = capture_state(simulator)
        with pytest.raises(CheckpointError, match="hooks"):
            restore_simulator(state, hooks=(lambda sim, r: None,))

    def test_load_rejects_non_simulator_payload(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, "simulator", {"not": "a state"}, round_index=0)
        with pytest.raises(CheckpointError, match="not a simulator state"):
            load_simulator_checkpoint(path)

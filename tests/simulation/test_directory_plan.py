"""Directory plans: planned construction equals inline construction."""

from repro.simulation.adversary import CollusiveBehavior
from repro.simulation.engine import (
    InteractionSimulator,
    SimulationConfig,
    build_directory_plan,
)
from repro.simulation.rng import RandomStreams
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network

SPEC = SocialNetworkSpec(n_users=18, malicious_fraction=0.3, seed=9)
MIX = dict(
    traitor_fraction=0.3,
    whitewasher_fraction=0.3,
    selfish_fraction=0.2,
    collusion_fraction=0.6,
)


def _directory_signature(directory):
    return [(peer.base_id, type(peer.behavior).__name__) for peer in directory.peers()]


class TestDirectoryPlan:
    def test_plan_matches_inline_build(self):
        graph = generate_social_network(SPEC)
        config = SimulationConfig(rounds=1, seed=9, **MIX)
        plan = build_directory_plan(
            graph, RandomStreams(config.seed).stream("behavior"), **MIX
        )
        planned = InteractionSimulator(graph, config, directory_plan=plan)
        inline = InteractionSimulator(graph, config)
        assert _directory_signature(planned.directory) == _directory_signature(
            inline.directory
        )
        # Collusion rings carry the same accomplice sets.
        for with_plan, without in zip(planned.directory.peers(), inline.directory.peers(), strict=True):
            if isinstance(without.behavior, CollusiveBehavior):
                assert isinstance(with_plan.behavior, CollusiveBehavior)
                assert with_plan.behavior.ring == without.behavior.ring

    def test_materialize_builds_fresh_state_every_time(self):
        graph = generate_social_network(SPEC)
        plan = build_directory_plan(graph, RandomStreams(9).stream("behavior"), **MIX)
        first = plan.materialize(graph)
        second = plan.materialize(graph)
        assert first is not second
        assert all(a is not b for a, b in zip(first, second, strict=True))
        assert all(a.behavior is not b.behavior for a, b in zip(first, second, strict=True))

    def test_trajectories_identical_with_and_without_plan(self):
        graph = generate_social_network(SPEC)
        config = SimulationConfig(rounds=6, seed=9, **MIX)
        plan = build_directory_plan(
            graph, RandomStreams(config.seed).stream("behavior"), **MIX
        )
        with_plan = InteractionSimulator(graph, config, directory_plan=plan).run()
        without = InteractionSimulator(graph, SimulationConfig(rounds=6, seed=9, **MIX)).run()
        assert [
            (t.transaction_id, t.consumer, t.provider, t.outcome, t.quality)
            for t in with_plan.transactions
        ] == [
            (t.transaction_id, t.consumer, t.provider, t.outcome, t.quality)
            for t in without.transactions
        ]
        assert with_plan.ground_truth_honesty == without.ground_truth_honesty

"""Unit tests for the simulation metrics collector."""

import pytest

from repro.simulation.metrics import MetricsCollector, RoundMetrics
from repro.simulation.transaction import Feedback, Transaction, TransactionOutcome


def make_transaction(tid: int, outcome=TransactionOutcome.SUCCESS, provider="p"):
    return Transaction(
        transaction_id=tid,
        time=0,
        consumer="c",
        provider=provider,
        outcome=outcome,
        quality=outcome.as_score,
    )


def make_feedback(tid: int, truthful=True):
    return Feedback(
        transaction_id=tid, time=0, subject="p", rating=1.0, rater="c", truthful=truthful
    )


class TestRoundMetrics:
    def test_rates_with_no_activity(self):
        metrics = RoundMetrics(round_index=0)
        assert metrics.success_rate == 0.0
        assert metrics.malicious_rate == 0.0
        assert metrics.disclosure_rate == 0.0
        assert metrics.honest_feedback_rate == 0.0

    def test_rates(self):
        metrics = RoundMetrics(
            round_index=0,
            transactions=4,
            successes=3,
            failures=1,
            malicious_provider_transactions=1,
            feedback_generated=4,
            feedback_disclosed=2,
            truthful_feedback=3,
        )
        assert metrics.success_rate == 0.75
        assert metrics.malicious_rate == 0.25
        assert metrics.disclosure_rate == 0.5
        assert metrics.honest_feedback_rate == 0.75


class TestMetricsCollector:
    def build(self) -> MetricsCollector:
        collector = MetricsCollector()
        collector.start_round(0, online_peers=5)
        collector.record_transaction(make_transaction(1), provider_honest=True)
        collector.record_transaction(
            make_transaction(2, TransactionOutcome.FAILURE, provider="bad"),
            provider_honest=False,
        )
        collector.record_feedback(make_feedback(1), disclosed=True)
        collector.record_feedback(make_feedback(2, truthful=False), disclosed=False)
        collector.end_round()
        collector.start_round(1, online_peers=5)
        collector.record_transaction(make_transaction(3), provider_honest=True)
        collector.record_feedback(make_feedback(3), disclosed=True)
        collector.end_round()
        return collector

    def test_round_accounting(self):
        collector = self.build()
        assert len(collector.rounds) == 2
        assert collector.rounds[0].transactions == 2
        assert collector.rounds[1].transactions == 1

    def test_overall_rates(self):
        collector = self.build()
        assert collector.total_transactions == 3
        assert collector.overall_success_rate == pytest.approx(2 / 3)
        assert collector.overall_malicious_rate == pytest.approx(1 / 3)
        assert collector.overall_disclosure_rate == pytest.approx(2 / 3)
        assert collector.overall_honest_feedback_rate == pytest.approx(2 / 3)

    def test_provider_success_rate(self):
        collector = self.build()
        assert collector.provider_success_rate("p") == 1.0
        assert collector.provider_success_rate("bad") == 0.0
        assert collector.provider_success_rate("unknown") == 0.0

    def test_series_and_tails(self):
        collector = self.build()
        assert collector.success_rate_series() == [0.5, 1.0]
        assert collector.malicious_rate_series() == [0.5, 0.0]
        assert collector.tail_success_rate(window=1) == 1.0
        assert collector.tail_malicious_rate(window=1) == 0.0

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.total_transactions == 0
        assert collector.overall_success_rate == 0.0
        assert collector.tail_success_rate() == 0.0

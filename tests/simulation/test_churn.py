"""Unit tests for the churn model."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.simulation.churn import ChurnEvent, ChurnModel
from repro.simulation.peer import Peer, PeerDirectory
from repro.socialnet.user import User


def make_directory(n: int = 10) -> PeerDirectory:
    return PeerDirectory([Peer(user=User(user_id=f"u{i}")) for i in range(n)])


def test_validation():
    with pytest.raises(ConfigurationError):
        ChurnModel(leave_probability=1.5)
    with pytest.raises(ConfigurationError):
        ChurnModel(return_probability=-0.2)


def test_no_churn_by_default():
    directory = make_directory()
    events = ChurnModel().step(directory, random.Random(0))
    assert events == []
    assert all(peer.online for peer in directory.peers())


def test_full_leave_probability_empties_network():
    directory = make_directory()
    events = ChurnModel(leave_probability=1.0).step(directory, random.Random(0))
    assert len(events) == 10
    assert all(event is ChurnEvent.LEFT for _, event in events)
    assert directory.online_peers() == []


def test_offline_peers_return():
    directory = make_directory()
    for peer in directory.peers():
        peer.online = False
    events = ChurnModel(return_probability=1.0).step(directory, random.Random(0))
    assert all(event is ChurnEvent.JOINED for _, event in events)
    assert len(directory.online_peers()) == 10


def test_partial_churn_is_deterministic_per_seed():
    model = ChurnModel(leave_probability=0.5)
    first = make_directory()
    second = make_directory()
    model.step(first, random.Random(3))
    model.step(second, random.Random(3))
    assert [p.online for p in first.peers()] == [p.online for p in second.peers()]

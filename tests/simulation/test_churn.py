"""Unit tests for the churn model."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.simulation.churn import ChurnEvent, ChurnModel
from repro.simulation.peer import Peer, PeerDirectory
from repro.socialnet.user import User


def make_directory(n: int = 10) -> PeerDirectory:
    return PeerDirectory([Peer(user=User(user_id=f"u{i}")) for i in range(n)])


def test_validation():
    with pytest.raises(ConfigurationError):
        ChurnModel(leave_probability=1.5)
    with pytest.raises(ConfigurationError):
        ChurnModel(return_probability=-0.2)


def test_no_churn_by_default():
    directory = make_directory()
    events = ChurnModel().step(directory, random.Random(0))
    assert events == []
    assert all(peer.online for peer in directory.peers())


def test_full_leave_probability_empties_network():
    directory = make_directory()
    events = ChurnModel(leave_probability=1.0).step(directory, random.Random(0))
    assert len(events) == 10
    assert all(event is ChurnEvent.LEFT for _, event in events)
    assert directory.online_peers() == []


def test_offline_peers_return():
    directory = make_directory()
    for peer in directory.peers():
        peer.online = False
    events = ChurnModel(return_probability=1.0).step(directory, random.Random(0))
    assert all(event is ChurnEvent.JOINED for _, event in events)
    assert len(directory.online_peers()) == 10


def test_partial_churn_is_deterministic_per_seed():
    model = ChurnModel(leave_probability=0.5)
    first = make_directory()
    second = make_directory()
    model.step(first, random.Random(3))
    model.step(second, random.Random(3))
    assert [p.online for p in first.peers()] == [p.online for p in second.peers()]


# -- edge cases: mass departure, rejoin ordering, whitewash interplay ----------


def test_engine_survives_every_peer_leaving_in_one_round():
    from repro.simulation.engine import InteractionSimulator, SimulationConfig
    from repro.socialnet.generators import SocialNetworkSpec, generate_social_network

    graph = generate_social_network(SocialNetworkSpec(n_users=12, seed=2))
    config = SimulationConfig(
        rounds=5,
        churn=ChurnModel(leave_probability=1.0, return_probability=0.0),
        seed=2,
    )
    result = InteractionSimulator(graph, config).run()
    # Round 0 empties the network; every round still closes its metrics.
    assert len(result.metrics.rounds) == 5
    assert all(r.online_peers == 0 for r in result.metrics.rounds)
    assert result.transactions == []


def test_rejoin_ordering_is_deterministic_directory_order():
    first = make_directory()
    second = make_directory()
    for directory in (first, second):
        for peer in directory.peers():
            peer.online = False
    model = ChurnModel(return_probability=0.5)
    events_first = model.step(first, random.Random(11))
    events_second = model.step(second, random.Random(11))
    ids_first = [peer.base_id for peer, _ in events_first]
    ids_second = [peer.base_id for peer, _ in events_second]
    assert ids_first == ids_second
    # Events come out in directory (insertion) order, not in draw order.
    insertion = [peer.base_id for peer in first.peers()]
    assert ids_first == [uid for uid in insertion if uid in set(ids_first)]


def test_whitewash_identity_reset_keeps_feedback_history_attributable():
    """A whitewash must reset the reputation link, not the stored evidence."""
    from repro.scenarios.campaign import (
        AttackCampaign,
        CampaignDriver,
        PeerSelector,
        SelectGroup,
        Whitewash,
    )
    from repro.scenarios.runner import reputation_for_graph
    from repro.simulation.engine import InteractionSimulator, SimulationConfig
    from repro.socialnet.generators import SocialNetworkSpec, generate_social_network

    graph = generate_social_network(SocialNetworkSpec(n_users=14, malicious_fraction=0.3, seed=6))
    campaign = AttackCampaign(
        name="wash",
        events=[
            SelectGroup(0, "g", PeerSelector(population="dishonest")),
            Whitewash(4, "g"),
        ],
        window=(4, 8),
    )
    driver = CampaignDriver(campaign)
    reputation = reputation_for_graph(graph, "average")
    simulator = InteractionSimulator(
        graph,
        SimulationConfig(rounds=8, seed=6),
        reputation=reputation,
        hooks=(driver,),
    )
    simulator.run()
    washed = driver.groups["g"]
    assert washed and all(peer.identity_generation >= 1 for peer in washed)
    store = reputation.store
    # At least part of the group accumulated pre-wash evidence to preserve.
    assert any(store.about(peer.base_id) for peer in washed)
    for peer in washed:
        old_id = peer.base_id  # generation-0 identity == the base id
        # Evidence recorded before the wash stays under the old identity...
        old_evidence = store.about(old_id)
        assert all(f.subject == old_id for f in old_evidence)
        # ...and never migrates to the fresh identity.
        for feedback in store.about(peer.peer_id):
            assert feedback.subject == peer.peer_id
        # The directory still resolves both identities to the same peer, so
        # simulator-side attribution survives the reset.
        assert simulator.directory.get(old_id) is peer
        assert simulator.directory.get(peer.peer_id) is peer
        # The reputation system treats the fresh identity as a stranger when
        # it has no post-wash evidence about it.
        if not store.about(peer.peer_id):
            assert reputation.score(peer.peer_id) == reputation.default_score


def test_phased_churn_switches_probabilities_per_round():
    from repro.simulation.churn import ChurnPhase, PhasedChurnModel

    model = PhasedChurnModel(
        leave_probability=0.0,
        return_probability=0.0,
        phases=[ChurnPhase(2, 4, leave_probability=1.0, return_probability=0.0)],
    )
    directory = make_directory(6)
    rng = random.Random(0)
    assert model.step(directory, rng) == []  # round 0: base, no churn
    assert model.step(directory, rng) == []  # round 1
    events = model.step(directory, rng)  # round 2: phase active
    assert len(events) == 6
    assert all(event is ChurnEvent.LEFT for _, event in events)
    assert model.current_round == 3


def test_phased_churn_overlap_resolves_to_latest_phase():
    from repro.simulation.churn import ChurnPhase, PhasedChurnModel

    model = PhasedChurnModel(
        phases=[
            ChurnPhase(0, 10, leave_probability=0.0, return_probability=0.0),
            ChurnPhase(3, 5, leave_probability=1.0, return_probability=0.0),
        ]
    )
    for _ in range(3):
        model.step(make_directory(), random.Random(0))
    directory = make_directory()
    events = model.step(directory, random.Random(0))  # round 3: spike wins
    assert len(events) == 10


def test_phase_validation():
    from repro.simulation.churn import ChurnPhase

    with pytest.raises(ConfigurationError):
        ChurnPhase(5, 5)
    with pytest.raises(ConfigurationError):
        ChurnPhase(-1, 3)
    with pytest.raises(ConfigurationError):
        ChurnPhase(0, 3, leave_probability=1.5)


def test_phased_churn_model_is_reusable_across_simulators():
    """A campaign-carried churn model must rewind per run (engine resets it)."""
    from repro.simulation.churn import ChurnPhase, PhasedChurnModel
    from repro.simulation.engine import InteractionSimulator, SimulationConfig
    from repro.socialnet.generators import SocialNetworkSpec, generate_social_network

    churn = PhasedChurnModel(
        phases=[ChurnPhase(1, 3, leave_probability=1.0, return_probability=0.0)]
    )

    def run_once():
        graph = generate_social_network(SocialNetworkSpec(n_users=10, seed=4))
        config = SimulationConfig(rounds=5, churn=churn, seed=4)
        return InteractionSimulator(graph, config).run()

    first = run_once()
    second = run_once()
    assert [r.online_peers for r in first.metrics.rounds] == [
        r.online_peers for r in second.metrics.rounds
    ]
    # The spike really fired on the second run too: everyone left by round 2.
    assert second.metrics.rounds[2].online_peers == 0

"""Integration-grade tests for the InteractionSimulator."""

import pytest

from repro.errors import ConfigurationError
from repro.reputation.beta import BetaReputation
from repro.simulation.adversary import WhitewasherBehavior
from repro.simulation.churn import ChurnModel
from repro.simulation.engine import InteractionSimulator, SimulationConfig
from repro.socialnet.graph import SocialGraph
from repro.socialnet.user import User


class TestSimulationConfig:
    def test_defaults_valid(self):
        SimulationConfig()

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(rounds=-1)
        with pytest.raises(ConfigurationError):
            SimulationConfig(sharing_level=1.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(interactions_per_peer=-0.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(collusion_fraction=2.0)


class TestSimulatorBasics:
    def test_needs_at_least_two_peers(self):
        graph = SocialGraph([User(user_id="solo")])
        with pytest.raises(ConfigurationError):
            InteractionSimulator(graph)

    def test_run_produces_transactions_and_feedback(self, small_graph):
        result = InteractionSimulator(small_graph, SimulationConfig(rounds=10, seed=1)).run()
        assert len(result.transactions) > 0
        assert len(result.feedbacks) == len(result.transactions)
        assert len(result.metrics.rounds) == 10

    def test_deterministic_given_seed(self, small_graph):
        config = SimulationConfig(rounds=8, seed=4)
        first = InteractionSimulator(small_graph, config).run()
        second = InteractionSimulator(small_graph, SimulationConfig(rounds=8, seed=4)).run()
        assert [t.provider for t in first.transactions] == [t.provider for t in second.transactions]
        assert len(first.disclosed_feedbacks) == len(second.disclosed_feedbacks)

    def test_transactions_respect_social_graph(self, small_graph):
        result = InteractionSimulator(small_graph, SimulationConfig(rounds=5, seed=2)).run()
        for transaction in result.transactions:
            consumer = result.directory.get(transaction.consumer)
            provider = result.directory.get(transaction.provider)
            assert small_graph.are_connected(consumer.base_id, provider.base_id)

    def test_ground_truth_covers_population(self, small_graph):
        result = InteractionSimulator(small_graph, SimulationConfig(rounds=3)).run()
        assert set(result.ground_truth_honesty) == set(small_graph.user_ids())

    def test_zero_rounds(self, small_graph):
        result = InteractionSimulator(small_graph, SimulationConfig(rounds=0)).run()
        assert result.transactions == []
        assert result.metrics.rounds == []


class TestSharingLevel:
    def test_zero_sharing_discloses_nothing(self, small_graph):
        result = InteractionSimulator(
            small_graph, SimulationConfig(rounds=8, sharing_level=0.0, seed=1)
        ).run()
        assert result.disclosed_feedbacks == []
        assert result.disclosure_rate == 0.0

    def test_higher_sharing_discloses_more(self, small_graph):
        low = InteractionSimulator(
            small_graph, SimulationConfig(rounds=10, sharing_level=0.2, seed=1)
        ).run()
        high = InteractionSimulator(
            small_graph, SimulationConfig(rounds=10, sharing_level=1.0, seed=1)
        ).run()
        assert high.disclosure_rate > low.disclosure_rate


class TestAnonymousFeedback:
    def test_anonymous_feedback_has_no_rater(self, small_graph):
        result = InteractionSimulator(
            small_graph, SimulationConfig(rounds=5, anonymous_feedback=True, seed=1)
        ).run()
        assert all(feedback.rater is None for feedback in result.feedbacks)

    def test_identified_feedback_has_rater(self, small_graph):
        result = InteractionSimulator(
            small_graph, SimulationConfig(rounds=5, anonymous_feedback=False, seed=1)
        ).run()
        assert all(feedback.rater is not None for feedback in result.feedbacks)


class TestReputationIntegration:
    def test_reputation_receives_only_disclosed_feedback(self, small_graph):
        reputation = BetaReputation()
        result = InteractionSimulator(
            small_graph,
            SimulationConfig(rounds=10, sharing_level=0.5, seed=3),
            reputation=reputation,
        ).run()
        assert reputation.evidence_count == len(result.disclosed_feedbacks)

    def test_reputation_selection_reduces_malicious_rate(self, adversarial_graph):
        config = SimulationConfig(rounds=25, seed=5)
        baseline = InteractionSimulator(adversarial_graph, config).run()
        with_reputation = InteractionSimulator(
            adversarial_graph, SimulationConfig(rounds=25, seed=5), reputation=BetaReputation()
        ).run()
        assert (
            with_reputation.metrics.tail_malicious_rate()
            < baseline.metrics.tail_malicious_rate()
        )

    def test_disclosure_observer_called_per_disclosure(self, small_graph):
        seen = []
        result = InteractionSimulator(
            small_graph,
            SimulationConfig(rounds=6, seed=2),
            reputation=BetaReputation(),
            disclosure_observer=lambda feedback, consumer, provider: seen.append(feedback),
        ).run()
        assert len(seen) == len(result.disclosed_feedbacks)


class TestAdversaries:
    def test_whitewashers_change_identity(self, adversarial_graph):
        config = SimulationConfig(rounds=25, whitewasher_fraction=1.0, seed=6)
        simulator = InteractionSimulator(adversarial_graph, config, reputation=BetaReputation())
        result = simulator.run()
        whitewashed = [
            peer
            for peer in result.directory.peers()
            if isinstance(peer.behavior, WhitewasherBehavior) and peer.identity_generation > 0
        ]
        assert whitewashed, "at least one whitewasher should have shed its identity"

    def test_collusion_ring_is_created(self, adversarial_graph):
        simulator = InteractionSimulator(
            adversarial_graph,
            SimulationConfig(rounds=1, collusion_fraction=1.0, seed=7),
        )
        rings = [
            peer.behavior.ring
            for peer in simulator.directory.peers()
            if hasattr(peer.behavior, "ring")
        ]
        assert rings and all(len(ring) >= 1 for ring in rings)


class TestChurn:
    def test_churn_reduces_online_population(self, small_graph):
        config = SimulationConfig(
            rounds=5,
            churn=ChurnModel(leave_probability=0.5, return_probability=0.0),
            seed=8,
        )
        result = InteractionSimulator(small_graph, config).run()
        assert result.metrics.rounds[-1].online_peers < len(small_graph)

"""Unit tests for seeded random streams."""

from repro.simulation.rng import RandomStreams


def test_same_master_seed_reproduces_streams():
    first = RandomStreams(42).stream("churn").random()
    second = RandomStreams(42).stream("churn").random()
    assert first == second


def test_different_streams_are_independent():
    streams = RandomStreams(42)
    churn = [streams.stream("churn").random() for _ in range(3)]
    fresh = RandomStreams(42)
    # Drawing from another stream first must not shift the churn stream.
    fresh.stream("behavior").random()
    churn_again = [fresh.stream("churn").random() for _ in range(3)]
    assert churn == churn_again


def test_different_names_give_different_sequences():
    streams = RandomStreams(42)
    assert streams.stream("a").random() != streams.stream("b").random()


def test_different_master_seeds_differ():
    assert RandomStreams(1).stream("x").random() != RandomStreams(2).stream("x").random()


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_reset_reseeds_streams():
    streams = RandomStreams(7)
    first = streams.stream("x").random()
    streams.reset()
    assert streams.stream("x").random() == first


def test_master_seed_property():
    assert RandomStreams(99).master_seed == 99

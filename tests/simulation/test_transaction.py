"""Unit tests for transactions and feedback records."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.transaction import Feedback, Transaction, TransactionOutcome


class TestTransactionOutcome:
    def test_scores(self):
        assert TransactionOutcome.SUCCESS.as_score == 1.0
        assert TransactionOutcome.FAILURE.as_score == 0.0


class TestTransaction:
    def test_succeeded_property(self):
        transaction = Transaction(
            transaction_id=1,
            time=0,
            consumer="a",
            provider="b",
            outcome=TransactionOutcome.SUCCESS,
            quality=0.8,
        )
        assert transaction.succeeded

    def test_rejects_self_transaction(self):
        with pytest.raises(ConfigurationError):
            Transaction(
                transaction_id=1,
                time=0,
                consumer="a",
                provider="a",
                outcome=TransactionOutcome.SUCCESS,
            )

    def test_rejects_invalid_quality(self):
        with pytest.raises(ConfigurationError):
            Transaction(
                transaction_id=1,
                time=0,
                consumer="a",
                provider="b",
                outcome=TransactionOutcome.SUCCESS,
                quality=1.5,
            )


class TestFeedback:
    def test_positive_threshold(self):
        positive = Feedback(transaction_id=1, time=0, subject="b", rating=0.5, rater="a")
        negative = Feedback(transaction_id=2, time=0, subject="b", rating=0.49, rater="a")
        assert positive.positive
        assert not negative.positive

    def test_anonymous_when_rater_missing(self):
        feedback = Feedback(transaction_id=1, time=0, subject="b", rating=1.0, rater=None)
        assert feedback.is_anonymous

    def test_rejects_invalid_rating(self):
        with pytest.raises(ConfigurationError):
            Feedback(transaction_id=1, time=0, subject="b", rating=-0.1, rater="a")

    def test_is_immutable(self):
        feedback = Feedback(transaction_id=1, time=0, subject="b", rating=1.0, rater="a")
        with pytest.raises(AttributeError):
            feedback.rating = 0.0

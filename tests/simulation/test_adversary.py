"""Unit tests for behaviour models (honest, malicious, selfish, traitor...)."""

import random

import pytest

from repro.simulation.adversary import (
    BehaviorModel,
    CollusiveBehavior,
    HonestBehavior,
    MaliciousBehavior,
    SelfishBehavior,
    TraitorBehavior,
    WhitewasherBehavior,
    behavior_for_user,
)
from repro.simulation.transaction import Transaction, TransactionOutcome
from repro.socialnet.user import User


def make_transaction(provider="p", outcome=TransactionOutcome.SUCCESS):
    return Transaction(
        transaction_id=1,
        time=0,
        consumer="c",
        provider=provider,
        outcome=outcome,
        quality=outcome.as_score,
    )


@pytest.fixture()
def honest_user():
    return User(user_id="h", honesty=1.0, competence=0.9, privacy_concern=0.4)


@pytest.fixture()
def malicious_user():
    return User(user_id="m", honesty=0.05, competence=0.6, privacy_concern=0.1)


class TestHonestBehavior:
    def test_serves_near_competence(self, honest_user, rng):
        qualities = [HonestBehavior().serve_quality(honest_user, rng) for _ in range(50)]
        assert sum(qualities) / len(qualities) > 0.7

    def test_always_truthful(self, honest_user, rng):
        behavior = HonestBehavior()
        for outcome in TransactionOutcome:
            rating, truthful = behavior.rate_transaction(
                honest_user, make_transaction(outcome=outcome), rng
            )
            assert truthful
            assert rating == outcome.as_score


class TestMaliciousBehavior:
    def test_serves_badly(self, malicious_user, rng):
        qualities = [MaliciousBehavior().serve_quality(malicious_user, rng) for _ in range(50)]
        assert sum(qualities) / len(qualities) < 0.3

    def test_mostly_lies(self, malicious_user, rng):
        behavior = MaliciousBehavior(lie_probability=1.0)
        rating, truthful = behavior.rate_transaction(malicious_user, make_transaction(), rng)
        assert rating == 0.0
        assert not truthful


class TestSelfishBehavior:
    def test_often_refuses_service(self, honest_user, rng):
        behavior = SelfishBehavior(service_refusal_probability=1.0)
        assert not behavior.provides_service(honest_user, rng)

    def test_discloses_less_than_base(self, honest_user):
        selfish = SelfishBehavior()
        base = BehaviorModel()
        assert selfish.disclosure_probability(honest_user, 1.0) < base.disclosure_probability(
            honest_user, 1.0
        )


class TestTraitorBehavior:
    def test_good_then_bad(self, malicious_user, rng):
        behavior = TraitorBehavior(betrayal_after=5)
        early = [behavior.serve_quality(malicious_user, rng) for _ in range(5)]
        late = [behavior.serve_quality(malicious_user, rng) for _ in range(5)]
        assert min(early) > 0.5
        assert max(late) < 0.3
        assert behavior.has_betrayed


class TestWhitewasherBehavior:
    def test_whitewashes_below_threshold(self):
        behavior = WhitewasherBehavior(reputation_threshold=0.25)
        assert behavior.should_whitewash(0.1)
        assert not behavior.should_whitewash(0.5)

    def test_counts_whitewashes(self):
        behavior = WhitewasherBehavior()
        behavior.note_whitewash()
        behavior.note_whitewash()
        assert behavior.whitewash_count == 2


class TestCollusiveBehavior:
    def test_inflates_ring_members(self, malicious_user, rng):
        behavior = CollusiveBehavior(ring={"ally"})
        rating, _ = behavior.rate_transaction(
            malicious_user,
            make_transaction(provider="ally", outcome=TransactionOutcome.FAILURE),
            rng,
        )
        assert rating == 1.0

    def test_deflates_outsiders(self, malicious_user, rng):
        behavior = CollusiveBehavior(ring={"ally"})
        rating, _ = behavior.rate_transaction(
            malicious_user,
            make_transaction(provider="victim", outcome=TransactionOutcome.SUCCESS),
            rng,
        )
        assert rating == 0.0


class TestDisclosure:
    def test_respects_sharing_level(self, honest_user):
        behavior = BehaviorModel()
        assert behavior.disclosure_probability(honest_user, 0.0) == 0.0
        assert behavior.disclosure_probability(honest_user, 1.0) <= 1.0

    def test_privacy_concern_reduces_disclosure(self):
        careless = User(user_id="a", privacy_concern=0.0)
        careful = User(user_id="b", privacy_concern=1.0)
        behavior = BehaviorModel()
        assert behavior.disclosure_probability(careful, 0.8) < behavior.disclosure_probability(
            careless, 0.8
        )


class TestBehaviorForUser:
    def test_honest_user_gets_honest_behavior(self, honest_user):
        behavior = behavior_for_user(honest_user, rng=random.Random(0))
        assert isinstance(behavior, HonestBehavior)

    def test_dishonest_user_gets_malicious_family(self, malicious_user):
        behavior = behavior_for_user(malicious_user, rng=random.Random(0))
        assert isinstance(behavior, MaliciousBehavior)

    def test_traitor_fraction_one_gives_traitors(self, malicious_user):
        behavior = behavior_for_user(malicious_user, rng=random.Random(0), traitor_fraction=1.0)
        assert isinstance(behavior, TraitorBehavior)

    def test_whitewasher_fraction(self, malicious_user):
        behavior = behavior_for_user(
            malicious_user,
            rng=random.Random(0),
            traitor_fraction=0.0,
            whitewasher_fraction=1.0,
        )
        assert isinstance(behavior, WhitewasherBehavior)

    def test_selfish_fraction_applies_to_honest_users(self, honest_user):
        behavior = behavior_for_user(honest_user, rng=random.Random(0), selfish_fraction=1.0)
        assert isinstance(behavior, SelfishBehavior)

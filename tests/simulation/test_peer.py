"""Unit tests for peers and the peer directory."""

import pytest

from repro.errors import UnknownPeerError
from repro.simulation.peer import Peer, PeerDirectory
from repro.socialnet.user import User


def make_peer(user_id: str, honesty: float = 0.9) -> Peer:
    return Peer(user=User(user_id=user_id, honesty=honesty))


class TestPeer:
    def test_initial_identity_is_user_id(self):
        assert make_peer("alice").peer_id == "alice"

    def test_new_identity_changes_peer_id_not_base(self):
        peer = make_peer("alice")
        new_id = peer.new_identity()
        assert new_id == "alice#1"
        assert peer.peer_id == "alice#1"
        assert peer.base_id == "alice"

    def test_record_received_tracks_success_rate(self):
        peer = make_peer("alice")
        peer.record_received(True)
        peer.record_received(False)
        peer.record_received(True)
        assert peer.consumed_count == 3
        assert peer.observed_success_rate == pytest.approx(2 / 3)

    def test_success_rate_without_observations(self):
        assert make_peer("alice").observed_success_rate == 0.0


class TestPeerDirectory:
    def test_lookup_by_base_and_current_id(self):
        peer = make_peer("alice")
        directory = PeerDirectory([peer])
        assert directory.get("alice") is peer
        assert "alice" in directory
        assert len(directory) == 1

    def test_unknown_peer_raises(self):
        with pytest.raises(UnknownPeerError):
            PeerDirectory().get("ghost")

    def test_online_filtering(self):
        first, second = make_peer("a"), make_peer("b")
        second.online = False
        directory = PeerDirectory([first, second])
        assert [peer.base_id for peer in directory.online_peers()] == ["a"]
        assert directory.current_ids() == ["a"]
        assert set(directory.current_ids(online_only=False)) == {"a", "b"}

    def test_rebind_identity_after_whitewash(self):
        peer = make_peer("mallory", honesty=0.1)
        directory = PeerDirectory([peer])
        old_id = peer.peer_id
        peer.new_identity()
        directory.rebind_identity(peer, old_id)
        assert directory.get("mallory#1") is peer
        assert directory.get("mallory") is peer  # base id always resolves

    def test_honest_fraction(self):
        directory = PeerDirectory([make_peer("a", 0.9), make_peer("b", 0.1)])
        assert directory.honest_fraction() == 0.5

    def test_honest_fraction_empty(self):
        assert PeerDirectory().honest_fraction() == 0.0

"""Unit tests for the discrete-event queue and simulator."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.engine import EventDrivenSimulator
from repro.simulation.events import Event, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(Event(time=2.0, priority=0, action=lambda: order.append("late")))
        queue.push(Event(time=1.0, priority=0, action=lambda: order.append("early")))
        assert queue.pop().time == 1.0
        assert queue.pop().time == 2.0

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, priority=5, action=lambda: None, label="low"))
        queue.push(Event(time=1.0, priority=1, action=lambda: None, label="high"))
        assert queue.pop().label == "high"

    def test_insertion_order_breaks_full_ties(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, priority=0, action=lambda: None, label="first"))
        queue.push(Event(time=1.0, priority=0, action=lambda: None, label="second"))
        assert queue.pop().label == "first"

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(Event(time=3.0, priority=0, action=lambda: None))
        assert queue.peek_time() == 3.0
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestEventDrivenSimulator:
    def test_runs_actions_in_time_order(self):
        simulator = EventDrivenSimulator()
        order = []
        simulator.schedule_at(2.0, lambda: order.append("b"))
        simulator.schedule_at(1.0, lambda: order.append("a"))
        processed = simulator.run()
        assert processed == 2
        assert order == ["a", "b"]
        assert simulator.now == 2.0

    def test_schedule_in_is_relative(self):
        simulator = EventDrivenSimulator()
        simulator.schedule_in(5.0, lambda: None)
        simulator.run()
        assert simulator.now == 5.0

    def test_until_stops_early(self):
        simulator = EventDrivenSimulator()
        fired = []
        simulator.schedule_at(1.0, lambda: fired.append(1))
        simulator.schedule_at(10.0, lambda: fired.append(10))
        simulator.run(until=5.0)
        assert fired == [1]
        assert simulator.now == 5.0

    def test_events_can_schedule_events(self):
        simulator = EventDrivenSimulator()
        fired = []

        def chain():
            fired.append(simulator.now)
            if simulator.now < 3:
                simulator.schedule_in(1.0, chain)

        simulator.schedule_at(1.0, chain)
        simulator.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_cannot_schedule_in_the_past(self):
        simulator = EventDrivenSimulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        with pytest.raises(ConfigurationError):
            simulator.schedule_at(0.5, lambda: None)

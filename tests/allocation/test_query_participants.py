"""Unit tests for queries, providers and consumers."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.allocation.participants import ConsumerAgent, ProviderAgent
from repro.allocation.query import Query, QueryResult
from repro.satisfaction.intentions import ConsumerIntention, ProviderIntention


class TestQuery:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Query(query_id=1, consumer="c", topic="")
        with pytest.raises(ConfigurationError):
            Query(query_id=1, consumer="c", topic="music", cost=0.0)

    def test_result_satisfactory_threshold(self):
        query = Query(query_id=1, consumer="c", topic="music")
        assert QueryResult(query=query, provider="p", quality=0.5).satisfactory
        assert not QueryResult(query=query, provider="p", quality=0.49).satisfactory

    def test_result_quality_validated(self):
        query = Query(query_id=1, consumer="c", topic="music")
        with pytest.raises(ConfigurationError):
            QueryResult(query=query, provider="p", quality=1.2)


def make_provider(capacity=5, competence=0.8) -> ProviderAgent:
    return ProviderAgent(
        provider_id="p",
        intention=ProviderIntention("p"),
        competence={"music": competence},
        capacity_per_round=capacity,
    )


class TestProviderAgent:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProviderAgent(provider_id="p", intention=ProviderIntention("p"), capacity_per_round=-1)
        with pytest.raises(ConfigurationError):
            ProviderAgent(provider_id="p", intention=ProviderIntention("p"), competence={"x": 1.5})

    def test_competence_lookup_with_default(self):
        provider = make_provider()
        assert provider.competence_for("music") == 0.8
        assert provider.competence_for("unknown") == provider.default_competence

    def test_capacity_and_utilization(self):
        provider = make_provider(capacity=4)
        assert provider.has_capacity(4.0)
        assert not provider.has_capacity(4.5)
        provider.serve("music", 2.0, random.Random(0))
        assert provider.utilization == 0.5
        provider.end_round()
        assert provider.utilization == 0.0

    def test_zero_capacity_is_always_saturated(self):
        provider = make_provider(capacity=0)
        assert provider.utilization == 1.0
        assert not provider.has_capacity(0.5)

    def test_serve_returns_quality_near_competence(self):
        provider = make_provider(capacity=100, competence=0.9)
        rng = random.Random(1)
        qualities = [provider.serve("music", 1.0, rng) for _ in range(20)]
        assert 0.6 < sum(qualities) / len(qualities) <= 1.0
        assert provider.treated_queries == 20

    def test_overload_degrades_quality(self):
        fresh = make_provider(capacity=10, competence=0.9)
        overloaded = make_provider(capacity=10, competence=0.9)
        rng = random.Random(2)
        overloaded.current_load = 10.0
        fresh_quality = sum(fresh.serve("music", 0.0001, rng) for _ in range(20)) / 20
        overloaded_quality = sum(overloaded.serve("music", 0.0001, rng) for _ in range(20)) / 20
        assert overloaded_quality < fresh_quality


class TestConsumerAgent:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConsumerAgent(consumer_id="c", intention=ConsumerIntention("c"), activity=1.5)

    def test_note_result_updates_counts_and_preferences(self):
        consumer = ConsumerAgent(
            consumer_id="c",
            intention=ConsumerIntention("c", preferences={"p": 0.5}),
        )
        consumer.submitted_queries = 2
        consumer.note_result(0.9, "p")
        consumer.note_result(0.1, "p")
        assert consumer.satisfied_results == 1
        assert consumer.observed_satisfaction_rate == 0.5
        assert consumer.intention.preference("p") != 0.5

    def test_note_result_without_learning(self):
        consumer = ConsumerAgent(
            consumer_id="c", intention=ConsumerIntention("c", preferences={"p": 0.5})
        )
        consumer.note_result(1.0, "p", learn=False)
        assert consumer.intention.preference("p") == 0.5

    def test_satisfaction_rate_without_queries(self):
        consumer = ConsumerAgent(consumer_id="c", intention=ConsumerIntention("c"))
        assert consumer.observed_satisfaction_rate == 0.0

"""Unit tests for allocation strategies, the mediator and workloads."""

import random

import pytest

from repro.errors import AllocationError, ConfigurationError, UnknownPeerError
from repro.allocation.mediator import QueryMediator
from repro.allocation.participants import ConsumerAgent, ProviderAgent
from repro.allocation.query import Query
from repro.allocation.strategies import (
    AllocationContext,
    CapacityBasedAllocation,
    QualityBasedAllocation,
    RandomAllocation,
    ReputationAwareAllocation,
    SatisfactionBalancedAllocation,
)
from repro.allocation.workload import WorkloadGenerator, WorkloadSpec
from repro.satisfaction.intentions import ConsumerIntention, ProviderIntention
from repro.satisfaction.tracker import SatisfactionTracker


def provider(
    provider_id: str, *, competence=0.8, capacity=10, load=0.0, interest=0.5
) -> ProviderAgent:
    agent = ProviderAgent(
        provider_id=provider_id,
        intention=ProviderIntention(provider_id, default_interest=interest),
        competence={"music": competence},
        capacity_per_round=capacity,
    )
    agent.current_load = load
    return agent


def consumer(consumer_id: str, preferences=None) -> ConsumerAgent:
    return ConsumerAgent(
        consumer_id=consumer_id,
        intention=ConsumerIntention(consumer_id, preferences=preferences or {}),
    )


def query(consumer_id="c", topic="music", cost=1.0, qid=1) -> Query:
    return Query(query_id=qid, consumer=consumer_id, topic=topic, cost=cost)


class TestStrategies:
    def test_capacity_prefers_least_loaded(self):
        context = AllocationContext()
        chosen = CapacityBasedAllocation().allocate(
            query(),
            consumer("c"),
            [provider("busy", load=8.0), provider("idle", load=0.0)],
            context,
        )
        assert chosen.provider_id == "idle"

    def test_quality_prefers_most_competent(self):
        context = AllocationContext()
        chosen = QualityBasedAllocation().allocate(
            query(),
            consumer("c"),
            [provider("weak", competence=0.3), provider("expert", competence=0.95)],
            context,
        )
        assert chosen.provider_id == "expert"

    def test_reputation_prefers_reputable(self):
        context = AllocationContext(reputation_scores={"shady": 0.1, "solid": 0.95})
        chosen = ReputationAwareAllocation().allocate(
            query(), consumer("c"), [provider("shady"), provider("solid")], context
        )
        assert chosen.provider_id == "solid"

    def test_satisfaction_balanced_boosts_lagging_provider(self):
        tracker = SatisfactionTracker()
        tracker.observe("happy", 0.95)
        tracker.observe("starved", 0.05)
        context = AllocationContext(tracker=tracker)
        chosen = SatisfactionBalancedAllocation().allocate(
            query(), consumer("c"), [provider("happy"), provider("starved")], context
        )
        assert chosen.provider_id == "starved"

    def test_allocation_skips_saturated_providers(self):
        context = AllocationContext()
        chosen = QualityBasedAllocation().allocate(
            query(cost=5.0),
            consumer("c"),
            [provider("full", competence=0.99, capacity=4), provider("free", competence=0.4)],
            context,
        )
        assert chosen.provider_id == "free"

    def test_allocation_fails_when_nobody_has_capacity(self):
        context = AllocationContext()
        with pytest.raises(AllocationError):
            RandomAllocation().allocate(query(cost=100.0), consumer("c"), [provider("p")], context)

    def test_random_is_seed_deterministic(self):
        providers = [provider("a"), provider("b"), provider("c")]
        first = RandomAllocation().allocate(
            query(), consumer("c"), providers, AllocationContext(rng=random.Random(5))
        )
        second = RandomAllocation().allocate(
            query(), consumer("c"), providers, AllocationContext(rng=random.Random(5))
        )
        assert first.provider_id == second.provider_id

    def test_satisfaction_balanced_weight_validation(self):
        with pytest.raises(AllocationError):
            SatisfactionBalancedAllocation(
                preference_weight=0.0, intention_weight=0.0, balance_weight=0.0
            )


class TestMediator:
    def build(self, strategy=None) -> QueryMediator:
        providers = [
            provider("good", competence=0.9, interest=0.9),
            provider("bad", competence=0.2, interest=0.1),
        ]
        consumers = [consumer("c", preferences={"good": 0.9, "bad": 0.1})]
        return QueryMediator(providers, consumers, strategy=strategy, seed=1)

    def test_requires_providers(self):
        with pytest.raises(AllocationError):
            QueryMediator([], [consumer("c")])

    def test_submit_records_allocation_and_satisfaction(self):
        mediator = self.build(QualityBasedAllocation())
        result = mediator.submit(query(qid=1))
        assert result is not None
        assert result.provider == "good"
        assert len(mediator.records) == 1
        assert mediator.tracker.observation_count("c") == 1
        assert mediator.tracker.observation_count("good") == 1

    def test_unknown_consumer_rejected(self):
        mediator = self.build()
        with pytest.raises(UnknownPeerError):
            mediator.submit(query(consumer_id="ghost"))

    def test_unallocatable_query_counts_as_failure(self):
        mediator = self.build()
        outcome = mediator.submit(query(cost=1000.0))
        assert outcome is None
        assert mediator.failed_allocations == 1
        assert mediator.tracker.satisfaction("c") < 0.5

    def test_imposed_allocation_flagged(self):
        mediator = self.build(QualityBasedAllocation())
        mediator.providers["good"].intention.default_interest = 0.1
        result = mediator.submit(query(qid=2))
        assert result.imposed_on_provider

    def test_end_round_resets_load(self):
        mediator = self.build(QualityBasedAllocation())
        mediator.submit(query(qid=3))
        assert mediator.providers["good"].current_load > 0
        mediator.end_round()
        assert mediator.providers["good"].current_load == 0

    def test_report_structure(self):
        mediator = self.build(QualityBasedAllocation())
        mediator.submit_batch([query(qid=i) for i in range(1, 6)])
        report = mediator.report()
        assert report.allocations == 5
        assert 0.0 <= report.mean_quality <= 1.0
        assert "c" in report.consumer_satisfaction
        assert "good" in report.provider_satisfaction
        assert "good" in report.provider_allocation_satisfaction

    def test_set_reputation_scores(self):
        mediator = self.build(ReputationAwareAllocation())
        mediator.set_reputation_scores({"good": 0.1, "bad": 0.9})
        result = mediator.submit(query(qid=9))
        assert result.provider == "bad"


class TestWorkload:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(topics=())
        with pytest.raises(ConfigurationError):
            WorkloadSpec(topic_skew=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(cost_range=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(queries_per_consumer_per_round=-1)

    def test_generator_requires_consumers(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(WorkloadSpec(), [])

    def test_round_generation_counts(self):
        generator = WorkloadGenerator(
            WorkloadSpec(queries_per_consumer_per_round=2.0, seed=1), ["c1", "c2"]
        )
        batch = generator.round_queries(0)
        assert len(batch) == 4
        assert {q.consumer for q in batch} == {"c1", "c2"}

    def test_query_ids_are_unique_across_rounds(self):
        generator = WorkloadGenerator(WorkloadSpec(seed=2), ["c1", "c2", "c3"])
        ids = [q.query_id for batch in generator.rounds(5) for q in batch]
        assert len(ids) == len(set(ids))

    def test_costs_within_range(self):
        spec = WorkloadSpec(cost_range=(0.5, 1.5), seed=3)
        generator = WorkloadGenerator(spec, ["c"])
        for batch in generator.rounds(10):
            for q in batch:
                assert 0.5 <= q.cost <= 1.5

    def test_skew_concentrates_on_first_topic(self):
        uniform = WorkloadGenerator(
            WorkloadSpec(topic_skew=0.0, queries_per_consumer_per_round=5, seed=4), ["c"]
        )
        skewed = WorkloadGenerator(
            WorkloadSpec(topic_skew=1.0, queries_per_consumer_per_round=5, seed=4), ["c"]
        )
        first_topic = WorkloadSpec().topics[0]
        count = {"uniform": 0, "skewed": 0}
        for batch in uniform.rounds(30):
            count["uniform"] += sum(1 for q in batch if q.topic == first_topic)
        for batch in skewed.rounds(30):
            count["skewed"] += sum(1 for q in batch if q.topic == first_topic)
        assert count["skewed"] > count["uniform"]

    def test_topic_distribution_sums_to_one(self):
        generator = WorkloadGenerator(WorkloadSpec(topic_skew=0.5), ["c"])
        assert sum(generator.topic_distribution().values()) == pytest.approx(1.0)

    def test_negative_rounds_rejected(self):
        generator = WorkloadGenerator(WorkloadSpec(), ["c"])
        with pytest.raises(ConfigurationError):
            list(generator.rounds(-1))

"""Framework mechanics: suppressions, registry, collection, result shaping."""

from __future__ import annotations

from pathlib import Path

import pytest

from lint_helpers import fixture_config, lint_source, rules_by_id
from repro.analysis.framework import (
    Finding,
    ModuleContext,
    Rule,
    collect_modules,
    register,
    registered_rules,
    run_lint,
)

CLOCK_CALL = "import time\n\n\ndef stamp() -> float:\n    return time.time()\n"


def _context(source: str) -> ModuleContext:
    return ModuleContext(Path("sample.py"), "sample.py", source)


class TestSuppressions:
    def test_inline_comment_silences_by_id(self) -> None:
        ctx = _context("x = 1  # repro-lint: ignore[R1] reason\n")
        assert ctx.suppressed(1, "R1", "determinism")
        assert not ctx.suppressed(1, "R2", "ordering")

    def test_slug_and_case_insensitive(self) -> None:
        ctx = _context("x = 1  # REPRO-LINT: IGNORE[Determinism] reason\n")
        assert ctx.suppressed(1, "R1", "determinism")

    def test_multiple_rules_in_one_comment(self) -> None:
        ctx = _context("x = 1  # repro-lint: ignore[R1, float-equality]\n")
        assert ctx.suppressed(1, "R1", "determinism")
        assert ctx.suppressed(1, "R5", "float-equality")
        assert not ctx.suppressed(1, "R2", "ordering")

    def test_comment_line_above_applies(self) -> None:
        ctx = _context("# repro-lint: ignore[R1] reason\nx = 1\n")
        assert ctx.suppressed(2, "R1", "determinism")

    def test_comment_block_is_walked(self) -> None:
        source = "# repro-lint: ignore[R1] reason\n# more commentary\nx = 1\n"
        ctx = _context(source)
        assert ctx.suppressed(3, "R1", "determinism")

    def test_code_line_stops_the_walk(self) -> None:
        """A suppression must not leak across intervening statements."""
        source = "y = 2  # repro-lint: ignore[R1] for THIS line only\nx = 1\n"
        ctx = _context(source)
        assert ctx.suppressed(1, "R1", "determinism")
        assert not ctx.suppressed(2, "R1", "determinism")

    def test_plain_comments_do_not_suppress(self) -> None:
        ctx = _context("# TODO: ignore[R1] is not our marker\nx = 1\n")
        assert not ctx.suppressed(2, "R1", "determinism")

    def test_end_to_end_suppression_marks_finding(self, tmp_path: Path) -> None:
        source = CLOCK_CALL.replace(
            "time.time()", "time.time()  # repro-lint: ignore[R1] fixture"
        )
        result = lint_source(tmp_path, source, "R1")
        assert result.active == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].suppressed is True


class TestRegistry:
    def test_all_rules_registered_in_order(self) -> None:
        rules = registered_rules()
        assert [rule.rule_id for rule in rules] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        ]
        assert all(rule.name and rule.description for rule in rules)

    def test_register_rejects_missing_id(self) -> None:
        class Nameless(Rule):
            pass

        with pytest.raises(ValueError, match="no rule_id"):
            register(Nameless)

    def test_register_rejects_duplicate_id(self) -> None:
        registered_rules()  # ensure the built-in rules hold their ids

        class Impostor(Rule):
            rule_id = "R1"
            name = "impostor"

        with pytest.raises(ValueError, match="duplicate"):
            register(Impostor)

    def test_reregistering_same_class_is_idempotent(self) -> None:
        rule_cls = type(rules_by_id("R1")[0])
        assert register(rule_cls) is rule_cls


class TestCollection:
    def test_directory_collection_is_recursive_and_sorted(self, tmp_path: Path) -> None:
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        modules = collect_modules([tmp_path / "pkg"], tmp_path)
        assert [module.rel for module in modules] == ["pkg/a.py", "pkg/b.py"]

    def test_single_file_collection(self, tmp_path: Path) -> None:
        target = tmp_path / "solo.py"
        target.write_text("x = 1\n")
        modules = collect_modules([target], tmp_path)
        assert [module.rel for module in modules] == ["solo.py"]

    def test_rel_falls_back_outside_root(self, tmp_path: Path) -> None:
        target = tmp_path / "outside.py"
        target.write_text("x = 1\n")
        other_root = tmp_path / "elsewhere"
        other_root.mkdir()
        modules = collect_modules([target], other_root)
        assert modules[0].rel == target.as_posix()

    def test_module_suffix_matching(self, tmp_path: Path) -> None:
        target = tmp_path / "repro" / "core" / "accel.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        module = collect_modules([target], tmp_path)[0]
        assert module.matches("repro/core/accel.py")
        assert module.matches("core/accel.py")
        assert module.matches("accel.py")
        assert not module.matches("decel.py")
        assert not module.matches("ore/accel.py")


class TestResultShaping:
    def test_findings_sorted_by_location(self, tmp_path: Path) -> None:
        source = (
            "import time\n"
            "import uuid\n"
            "\n"
            "\n"
            "def later() -> str:\n"
            "    return str(uuid.uuid4())\n"
            "\n"
            "\n"
            "def earlier() -> float:\n"
            "    return time.time()\n"
        )
        result = lint_source(tmp_path, source, "R1")
        lines = [finding.line for finding in result.active]
        assert lines == sorted(lines)

    def test_counts_exclude_suppressed(self, tmp_path: Path) -> None:
        source = (
            "import time\n"
            "\n"
            "\n"
            "def stamp() -> float:\n"
            "    return time.time()\n"
            "\n"
            "\n"
            "def quiet() -> float:\n"
            "    return time.time()  # repro-lint: ignore[R1] reason\n"
        )
        result = lint_source(tmp_path, source, "R1")
        assert result.counts() == {"R1": 1}
        assert len(result.suppressed) == 1

    def test_finding_as_dict_round_trip(self) -> None:
        finding = Finding(
            rule="R9", name="demo", path="a.py", line=3, column=7, message="boom"
        )
        payload = finding.as_dict()
        assert payload == {
            "rule": "R9",
            "name": "demo",
            "path": "a.py",
            "line": 3,
            "column": 7,
            "message": "boom",
            "suppressed": False,
        }

    def test_checked_files_counts_modules(self, tmp_path: Path) -> None:
        (tmp_path / "one.py").write_text("x = 1\n")
        (tmp_path / "two.py").write_text("y = 2\n")
        result = run_lint([tmp_path], fixture_config(), root=tmp_path)
        assert result.checked_files == 2
        assert result.active == []

"""Shared helpers for the repro-lint test suite.

The fixture corpus under ``fixtures/`` holds bad/good example modules per
rule; they are parsed by the linter, never imported, and their filenames
avoid the ``test_`` prefix so pytest does not collect them.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.contracts import CacheContract, LintConfig
from repro.analysis.framework import LintResult, Rule, registered_rules, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: Cache contracts binding R3 to the corpus classes (both fixture files).
_FIXTURE_CONTRACTS = tuple(
    contract
    for module in ("r3_cache_bad.py", "r3_cache_good.py")
    for contract in (
        CacheContract(
            module=module,
            class_name="Ledger",
            counters=("_version",),
            invalidators=("_invalidate",),
            cache_fields=("_totals_cache",),
        ),
        CacheContract(
            module=module,
            class_name="Mirror",
            cache_fields=("_snapshot", "_seen_version"),
            source_counters=("_ledger.version",),
        ),
    )
)


def fixture_config() -> LintConfig:
    """The corpus analogue of ``default_config``: binds rules to fixtures."""
    return LintConfig(
        cache_contracts=_FIXTURE_CONTRACTS,
        float_eq_helpers=("_quantized",),
        error_record_calls=("task_failure_record",),
    )


def rules_by_id(*rule_ids: str) -> list[Rule]:
    """Fresh rule instances for the given ids (all rules when empty)."""
    rules = registered_rules()
    if not rule_ids:
        return rules
    return [rule for rule in rules if rule.rule_id in rule_ids]


def lint_fixture(
    name: str,
    *rule_ids: str,
    config: LintConfig | None = None,
) -> LintResult:
    """Lint one corpus file with the named rules (default: all)."""
    return run_lint(
        [FIXTURES / name],
        config if config is not None else fixture_config(),
        rules=rules_by_id(*rule_ids),
        root=FIXTURES,
    )


def lint_source(
    tmp_path: Path,
    source: str,
    *rule_ids: str,
    config: LintConfig | None = None,
    filename: str = "sample.py",
) -> LintResult:
    """Write ``source`` to a scratch module and lint it."""
    path = tmp_path / filename
    path.write_text(source)
    return run_lint(
        [path],
        config if config is not None else fixture_config(),
        rules=rules_by_id(*rule_ids),
        root=tmp_path,
    )

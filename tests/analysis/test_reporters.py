"""Text and JSON report rendering."""

from __future__ import annotations

import json

from lint_helpers import lint_fixture
from repro.analysis.reporters import render_json, render_text


def test_text_report_for_findings() -> None:
    result = lint_fixture("r5_float_bad.py", "R5")
    report = render_text(result)
    lines = report.splitlines()
    assert len(lines) == len(result.active) + 1
    first = result.active[0]
    assert lines[0].startswith(f"{first.path}:{first.line}:{first.column}: R5[")
    assert "R5: 5" in lines[-1]
    assert f"{len(result.active)} finding(s)" in lines[-1]


def test_text_report_clean_summary() -> None:
    result = lint_fixture("r5_float_good.py", "R5")
    report = render_text(result)
    assert report == "repro-lint: clean — 1 file(s), 0 suppressed finding(s)"


def test_text_report_show_suppressed() -> None:
    result = lint_fixture("suppressed_examples.py", "R1")
    quiet = render_text(result)
    verbose = render_text(result, show_suppressed=True)
    assert "(suppressed)" not in quiet
    assert verbose.count("(suppressed)") == 3
    assert "3 suppressed" in verbose.splitlines()[-1]


def test_json_report_document() -> None:
    result = lint_fixture("r2_ordering_bad.py", "R2")
    document = json.loads(render_json(result))
    assert document["version"] == 1
    assert document["clean"] is False
    assert document["checked_files"] == 1
    assert document["counts"] == {"R2": len(result.active)}
    assert len(document["findings"]) == len(result.findings)
    finding = document["findings"][0]
    assert set(finding) == {
        "rule",
        "name",
        "path",
        "line",
        "column",
        "message",
        "suppressed",
    }


def test_json_report_clean_and_stable() -> None:
    result = lint_fixture("r6_typing_good.py", "R6")
    rendered = render_json(result)
    assert json.loads(rendered)["clean"] is True
    # Stable output: sorted keys, so two renders are byte-identical.
    assert rendered == render_json(result)
    keys = list(json.loads(rendered))
    assert keys == sorted(keys)

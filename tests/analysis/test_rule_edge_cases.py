"""Rule behaviours the corpus cannot express: exemptions, aliases, configs."""

from __future__ import annotations

from pathlib import Path

from lint_helpers import lint_source
from repro.analysis.contracts import LintConfig


class TestDeterminismRule:
    def test_exempt_module_is_skipped(self, tmp_path: Path) -> None:
        source = "import random\n\nrng = random.Random()\n"
        config = LintConfig(determinism_exempt=("rng.py",))
        result = lint_source(tmp_path, source, "R1", config=config, filename="rng.py")
        assert result.active == []

    def test_clock_exempt_allows_clocks_but_not_random(self, tmp_path: Path) -> None:
        source = (
            "import random\n"
            "import time\n"
            "\n"
            "\n"
            "def measure() -> float:\n"
            "    return time.perf_counter() + random.random()\n"
        )
        config = LintConfig(clock_exempt=("profiling.py",))
        result = lint_source(
            tmp_path, source, "R1", config=config, filename="profiling.py"
        )
        assert len(result.active) == 1
        assert "random.random" in result.active[0].message

    def test_module_alias_is_resolved(self, tmp_path: Path) -> None:
        source = "import time as clock\n\nstamp = clock.monotonic()\n"
        result = lint_source(tmp_path, source, "R1")
        assert len(result.active) == 1
        assert "time.monotonic" in result.active[0].message

    def test_bare_import_alias_is_resolved(self, tmp_path: Path) -> None:
        source = "from time import perf_counter as tick\n\nstamp = tick()\n"
        result = lint_source(tmp_path, source, "R1")
        assert len(result.active) == 1
        assert "imported as tick" in result.active[0].message

    def test_seeded_random_class_alias_is_allowed(self, tmp_path: Path) -> None:
        source = (
            "from random import Random as Rng\n"
            "\n"
            "good = Rng(42)\n"
            "bad = Rng()\n"
        )
        result = lint_source(tmp_path, source, "R1")
        assert len(result.active) == 1
        assert result.active[0].line == 4

    def test_datetime_module_attribute_form(self, tmp_path: Path) -> None:
        source = "import datetime\n\nstamp = datetime.datetime.now()\n"
        result = lint_source(tmp_path, source, "R1")
        assert len(result.active) == 1
        assert "wall clock" in result.active[0].message


class TestOrderingRule:
    def test_config_registered_set_returning_method(self, tmp_path: Path) -> None:
        source = (
            "def roster(store: object) -> list[str]:\n"
            "    return list(store.participants())\n"
        )
        config = LintConfig(set_returning=("participants",))
        result = lint_source(tmp_path, source, "R2", config=config)
        assert len(result.active) == 1
        clean = lint_source(tmp_path, source, "R2", config=LintConfig())
        assert clean.active == []

    def test_locally_annotated_set_function(self, tmp_path: Path) -> None:
        source = (
            "def _ids() -> frozenset[str]:\n"
            '    return frozenset(("a", "b"))\n'
            "\n"
            "\n"
            "def ordered() -> list[str]:\n"
            "    return sorted(_ids())\n"
            "\n"
            "\n"
            "def unordered() -> list[str]:\n"
            "    return list(_ids())\n"
        )
        result = lint_source(tmp_path, source, "R2")
        assert [finding.line for finding in result.active] == [10]

    def test_set_copy_preserves_setness(self, tmp_path: Path) -> None:
        source = (
            "def copies() -> list[int]:\n"
            "    original = {1, 2, 3}\n"
            "    duplicate = original.copy()\n"
            "    return list(duplicate)\n"
        )
        result = lint_source(tmp_path, source, "R2")
        assert len(result.active) == 1

    def test_nested_function_scopes_are_independent(self, tmp_path: Path) -> None:
        source = (
            "def outer() -> list[int]:\n"
            "    values = {1, 2}\n"
            "\n"
            "    def inner() -> list[int]:\n"
            "        values = [1, 2]\n"
            "        return list(values)\n"
            "\n"
            "    return inner() + sorted(values)\n"
        )
        result = lint_source(tmp_path, source, "R2")
        assert result.active == []


class TestFloatEqualityRule:
    def test_helper_exemption_is_config_driven(self, tmp_path: Path) -> None:
        source = (
            "def _quantized(left: float, right: float) -> bool:\n"
            "    return left == right\n"
        )
        exempt = lint_source(
            tmp_path, source, "R5", config=LintConfig(float_eq_helpers=("_quantized",))
        )
        assert exempt.active == []
        strict = lint_source(tmp_path, source, "R5", config=LintConfig())
        assert len(strict.active) == 1

    def test_literal_pair_is_skipped(self, tmp_path: Path) -> None:
        source = "CONSISTENT = 1.0 == 1.0\n"
        result = lint_source(tmp_path, source, "R5")
        assert result.active == []

    def test_unary_minus_is_floatish(self, tmp_path: Path) -> None:
        source = "def check(x: float) -> bool:\n    return -x == 2\n"
        result = lint_source(tmp_path, source, "R5")
        assert len(result.active) == 1

    def test_chained_comparison_flags_float_link(self, tmp_path: Path) -> None:
        source = "def check(a: int, b: float, c: int) -> bool:\n    return a == b == c\n"
        result = lint_source(tmp_path, source, "R5")
        assert len(result.active) == 1


class TestTypingRule:
    def _messages(self, tmp_path: Path, source: str) -> list[str]:
        return [finding.message for finding in lint_source(tmp_path, source, "R6").active]

    def test_optional_spellings_all_accepted(self, tmp_path: Path) -> None:
        source = (
            "import typing\n"
            "from typing import Any, Optional, Union\n"
            "\n"
            "\n"
            "def spellings(\n"
            "    a: int | None = None,\n"
            "    b: Optional[int] = None,\n"
            "    c: Union[int, None] = None,\n"
            "    d: Any = None,\n"
            "    e: object = None,\n"
            "    f: typing.Optional[int] = None,\n"
            '    g: "int | None" = None,\n'
            ") -> None:\n"
            "    del a, b, c, d, e, f, g\n"
        )
        assert self._messages(tmp_path, source) == []

    def test_implicit_optional_spellings_rejected(self, tmp_path: Path) -> None:
        source = (
            "def implicit(a: int = None, *, b: str = None) -> None:\n"
            "    del a, b\n"
        )
        messages = self._messages(tmp_path, source)
        assert len(messages) == 2
        assert all("implicit Optional" in message for message in messages)

    def test_unparseable_string_annotation_rejected(self, tmp_path: Path) -> None:
        source = 'def broken(a: "not [valid" = None) -> None:\n    del a\n'
        messages = self._messages(tmp_path, source)
        assert len(messages) == 1

    def test_lambda_parameters_are_not_checked(self, tmp_path: Path) -> None:
        source = "double = lambda value: value * 2\n"
        messages = self._messages(tmp_path, source)
        assert messages == []

    def test_nested_defs_are_checked(self, tmp_path: Path) -> None:
        source = (
            "def outer() -> None:\n"
            "    def inner(value):\n"
            "        return value\n"
            "\n"
            "    inner(1)\n"
        )
        messages = self._messages(tmp_path, source)
        assert len(messages) == 2  # unannotated parameter + missing return

"""R7 (template parity): catalog ⇄ template cross-referencing.

Miniature projects under ``tmp_path`` carry a fake catalog module and a
template directory; the live-tree binding is covered by
``test_live_tree.py`` staying clean.
"""

from __future__ import annotations

from pathlib import Path

from lint_helpers import rules_by_id
from repro.analysis.contracts import LintConfig, default_config
from repro.analysis.framework import run_lint

CATALOG_SOURCE = (
    "CATALOG = {\n"
    "    'alpha': object(),\n"
    "    'beta': object(),\n"
    "}\n"
)

TEMPLATE = "schema_version: 1\nname: {name}\nscenario:\n  catalog: {name}\n"


def _config() -> LintConfig:
    return LintConfig(
        template_dir="templates",
        catalog_module="catalog.py",
        template_schema_versions=(1,),
    )


def _project(tmp_path: Path, templates: dict[str, str]) -> Path:
    src = tmp_path / "src"
    src.mkdir()
    (src / "catalog.py").write_text(CATALOG_SOURCE)
    template_dir = tmp_path / "templates"
    template_dir.mkdir()
    for filename, body in templates.items():
        (template_dir / filename).write_text(body)
    return src


def _lint(tmp_path: Path, src: Path, config: LintConfig | None = None):
    return run_lint(
        [src], config or _config(), rules=rules_by_id("R7"), root=tmp_path
    )


def test_full_parity_is_clean(tmp_path: Path) -> None:
    src = _project(
        tmp_path,
        {
            "alpha.yaml": TEMPLATE.format(name="alpha"),
            "beta.yaml": TEMPLATE.format(name="beta"),
        },
    )
    assert _lint(tmp_path, src).active == []


def test_missing_template_lists_names(tmp_path: Path) -> None:
    src = _project(tmp_path, {"alpha.yaml": TEMPLATE.format(name="alpha")})
    findings = _lint(tmp_path, src).active
    assert len(findings) == 1
    assert "'beta'" in findings[0].message
    assert findings[0].path.endswith("catalog.py")
    assert findings[0].line == 1  # the CATALOG assignment line


def test_unsupported_schema_version_is_reported(tmp_path: Path) -> None:
    bad = "schema_version: 99\nname: alpha\nscenario:\n  catalog: alpha\n"
    src = _project(
        tmp_path,
        {"alpha.yaml": bad, "beta.yaml": TEMPLATE.format(name="beta")},
    )
    findings = _lint(tmp_path, src).active
    assert len(findings) == 1
    assert "schema_version 99" in findings[0].message
    assert findings[0].path == "templates/alpha.yaml"


def test_missing_schema_version_is_reported(tmp_path: Path) -> None:
    bad = "name: alpha\nscenario:\n  catalog: alpha\n"
    src = _project(
        tmp_path,
        {"alpha.yaml": bad, "beta.yaml": TEMPLATE.format(name="beta")},
    )
    findings = _lint(tmp_path, src).active
    assert len(findings) == 1
    assert "schema_version None" in findings[0].message


def test_unreadable_template_is_reported(tmp_path: Path) -> None:
    src = _project(
        tmp_path,
        {
            "alpha.json": "{not json",
            "beta.yaml": TEMPLATE.format(name="beta"),
        },
    )
    findings = _lint(tmp_path, src).active
    messages = " | ".join(finding.message for finding in findings)
    assert "unreadable template" in messages
    assert "'alpha'" in messages  # alpha also counts as missing


def test_non_mapping_template_is_reported(tmp_path: Path) -> None:
    src = _project(
        tmp_path,
        {
            "alpha.yaml": TEMPLATE.format(name="alpha"),
            "beta.yaml": "- just\n- a\n- list\n",
        },
    )
    findings = _lint(tmp_path, src).active
    messages = " | ".join(finding.message for finding in findings)
    assert "not a mapping" in messages


def test_missing_template_dir_is_an_explicit_finding(tmp_path: Path) -> None:
    src = tmp_path / "src"
    src.mkdir()
    (src / "catalog.py").write_text(CATALOG_SOURCE)
    findings = _lint(tmp_path, src).active
    assert len(findings) == 1
    assert "refusing to silently pass" in findings[0].message


def test_missing_catalog_dict_is_an_explicit_finding(tmp_path: Path) -> None:
    src = tmp_path / "src"
    src.mkdir()
    (src / "catalog.py").write_text("CATALOG = build()\n")
    (tmp_path / "templates").mkdir()
    findings = _lint(tmp_path, src).active
    assert len(findings) == 1
    assert "cannot be checked" in findings[0].message


def test_catalog_outside_linted_paths_is_silent(tmp_path: Path) -> None:
    src = tmp_path / "src"
    src.mkdir()
    (src / "plain.py").write_text("x = 1\n")
    assert _lint(tmp_path, src).active == []


def test_disabled_without_configuration(tmp_path: Path) -> None:
    src = _project(tmp_path, {})
    assert _lint(tmp_path, src, LintConfig()).active == []


def test_default_config_binds_live_tree() -> None:
    config = default_config()
    assert config.template_dir == "templates"
    assert config.catalog_module == "repro/scenarios/catalog.py"
    assert 1 in config.template_schema_versions

"""Fixture: broad except handlers that swallow failures (R8).

Parsed by the repro-lint tests — never imported or executed.
"""

from __future__ import annotations


def swallow_bare(payload: str) -> int:
    try:
        return int(payload)
    except:  # noqa: E722
        return 0


def swallow_with_fallback(payload: str) -> int:
    try:
        return int(payload)
    except Exception:
        return -1


def swallow_base_exception(records: list[int], payload: str) -> None:
    try:
        records.append(int(payload))
    except BaseException:
        records.clear()


def swallow_in_tuple(payload: str) -> int:
    try:
        return int(payload)
    except (ValueError, Exception):
        return 0

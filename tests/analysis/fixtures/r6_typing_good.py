"""Fixture: fully annotated defs that R6 must not flag.

Parsed by the repro-lint tests — never imported or executed.
"""

from __future__ import annotations


def explicit_optional(limit: int | None = None) -> int:
    return 0 if limit is None else limit


def star_args(*values: float, **options: object) -> None:
    del values, options


def keyword_only(*, retries: int = 3, label: str | None = None) -> str:
    return f"{label}:{retries}"


class Widget:
    def __init__(self) -> None:
        self.size = 0

    def resize(self, size: int) -> None:
        self.size = size

    @classmethod
    def default(cls) -> Widget:
        return cls()

"""Fixture: cache-discipline (R3) compliant classes under the test contract.

Same contract as ``r3_cache_bad.py``: ``Ledger`` owns ``_version``,
``Mirror`` derives from ``self._ledger.version``.  Parsed by the
repro-lint tests — never imported or executed.
"""


class Ledger:
    def __init__(self) -> None:
        self._entries: list[int] = []
        self._totals_cache: int | None = None
        self._version = 0

    def add(self, value: int) -> None:
        self._entries.append(value)
        self._version += 1

    def reset(self) -> None:
        self._entries = []
        self._invalidate()

    def _invalidate(self) -> None:
        self._totals_cache = None
        self._version += 1

    def total(self) -> int:
        # Writing a declared cache field needs no bump.
        if self._totals_cache is None:
            self._totals_cache = sum(self._entries)
        return self._totals_cache

    def entries(self) -> list[int]:
        return list(self._entries)

    @property
    def version(self) -> int:
        return self._version


class Mirror:
    def __init__(self, ledger: Ledger) -> None:
        self._ledger = ledger
        self._snapshot: list[int] = []
        self._seen_version = -1

    def refresh(self) -> None:
        if self._seen_version != self._ledger.version:
            self._snapshot = [entry * 2 for entry in self._ledger.entries()]
            self._seen_version = self._ledger.version

"""Fixture: broad except handlers R8 must not flag.

Parsed by the repro-lint tests — never imported or executed.
"""

from __future__ import annotations


class TaskError(RuntimeError):
    pass


def task_failure_record(exc: Exception) -> dict[str, str]:
    return {"error": str(exc)}


def reraise_domain_error(payload: str) -> int:
    try:
        return int(payload)
    except Exception as error:
        raise TaskError(f"bad payload: {payload!r}") from error


def bare_reraise(payload: str) -> int:
    try:
        return int(payload)
    except BaseException:
        raise


def emit_error_record(payload: str) -> dict[str, str]:
    try:
        int(payload)
        return {}
    except Exception as error:
        return task_failure_record(error)


def narrow_handler(payload: str) -> int:
    try:
        return int(payload)
    except ValueError:
        return 0


def narrow_tuple_handler(payload: str) -> int:
    try:
        return int(payload)
    except (ValueError, TypeError):
        return 0

"""Fixture: comparisons that R5 must not flag.

``_quantized`` is exempt only when the lint config registers it as a
float-equality helper.  Parsed by the repro-lint tests — never imported.
"""

SCALE = 10**9


def _quantized(left: float, right: float) -> bool:
    return left == right


def integer_comparison(count: int, total: int) -> bool:
    return count == total


def ordered_comparison(score: float, threshold: float) -> bool:
    return score >= threshold


def string_comparison(name: str) -> bool:
    return name == "alice"

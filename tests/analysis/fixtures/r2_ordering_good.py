"""Fixture: sorted or order-insensitive set use that R2 must not flag.

Parsed by the repro-lint tests — never imported or executed.
"""


def sorted_members(left: set[str], right: set[str]) -> list[str]:
    merged: set[str] = left | right
    return [name.upper() for name in sorted(merged)]


def cardinality(scores: dict[str, float]) -> int:
    pending = set(scores)
    return len(pending)


def membership(pool: list[str], name: str) -> bool:
    seen = set(pool)
    return name in seen


def sorted_loop(values: list[int]) -> int:
    unique = set(values)
    total = 0
    for value in sorted(unique):
        total = total * 10 + value
    return total

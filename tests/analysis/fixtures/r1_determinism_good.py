"""Fixture: deterministic randomness that R1 must not flag.

Parsed by the repro-lint tests — never imported or executed.
"""

import random


def seeded_generator(seed: int) -> random.Random:
    return random.Random(seed)


def fixed_generator() -> random.Random:
    return random.Random(0)


def derived_draws(rng: random.Random, n: int) -> list[float]:
    return [rng.random() for _ in range(n)]


def shuffled_copy(rng: random.Random, values: list[int]) -> list[int]:
    out = list(values)
    rng.shuffle(out)
    return out

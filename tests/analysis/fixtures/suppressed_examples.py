"""Fixture: R1 violations silenced by every suppression-comment form.

Parsed by the repro-lint tests — never imported or executed.
"""

import time


def inline_form() -> float:
    return time.time()  # repro-lint: ignore[R1] fixture shows inline suppression


def line_above_form() -> float:
    # repro-lint: ignore[determinism] slug form on the line directly above
    return time.time()


def comment_block_form() -> float:
    # A contiguous comment block above the statement:
    # repro-lint: ignore[R1, R5] several rules named in one comment
    # still reaches the flagged line below.
    return time.time()

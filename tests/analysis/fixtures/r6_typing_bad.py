"""Fixture: typing-discipline violations that R6 flags.

Parsed by the repro-lint tests — never imported or executed.
"""


def missing_return(count: int):
    return count * 2


def missing_parameter(count) -> int:
    return count * 2


def missing_star_args(*args, **kwargs) -> None:
    del args, kwargs


def implicit_optional(limit: int = None) -> int:  # noqa: RUF013
    return 0 if limit is None else limit


class Widget:
    def __init__(self):
        self.size = 0

    def resize(self, size):
        self.size = size

"""Fixture: every function here trips R1 (determinism).

Parsed by the repro-lint tests — never imported or executed.
"""

import os
import random
import time
import uuid
from datetime import datetime
from random import choice

import numpy as np


def ambient_draws() -> list[float]:
    values = [random.random(), random.uniform(0.0, 1.0)]
    values.append(float(choice([1, 2, 3])))
    return values


def unseeded_generator() -> random.Random:
    return random.Random()


def wall_clock() -> float:
    return time.time()


def stamped_id() -> str:
    return f"{uuid.uuid4()}-{datetime.now().isoformat()}"


def numpy_entropy() -> object:
    return np.random.default_rng()


def raw_entropy() -> bytes:
    return os.urandom(8)

"""Fixture: every iteration/conversion here trips R2 (ordering).

Parsed by the repro-lint tests — never imported or executed.
"""


def loop_over_literal() -> int:
    total = 0
    for value in {3, 1, 2}:
        total = total * 10 + value
    return total


def union_members(left: set[str], right: set[str]) -> list[str]:
    merged: set[str] = left | right
    return [name.upper() for name in merged]


def summed_scores(scores: dict[str, float]) -> float:
    pending = set(scores.values())
    return sum(pending)


def tupled_names(pool: list[str]) -> tuple[str, ...]:
    names = frozenset(pool)
    return tuple(names)


def chained_operators(extra: set[str]) -> list[str]:
    base = {"x", "y"}
    combined = base.union(extra)
    return list(combined)


def _participants() -> set[str]:
    return {"p1", "p2"}


def roster() -> list[str]:
    return list(_participants())

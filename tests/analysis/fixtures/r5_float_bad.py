"""Fixture: exact float comparisons that R5 flags.

Parsed by the repro-lint tests — never imported or executed.
"""


def literal_comparison(score: float) -> bool:
    return score == 0.5


def annotated_comparison(left: float, right: float) -> bool:
    return left != right


def conversion_comparison(raw: str) -> bool:
    return float(raw) == 1.25


def division_comparison(total: int, count: int) -> bool:
    return total / count != 1.0


def accumulator_comparison(values: list[float]) -> bool:
    acc: float = 0.0
    for value in values:
        acc = acc + value
    return acc != 0.0

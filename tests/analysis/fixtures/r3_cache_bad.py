"""Fixture: cache-discipline (R3) violations under the test contract.

The tests register ``Ledger`` as an owner class (counter ``_version``,
cache field ``_totals_cache``, invalidator ``_invalidate``) and ``Mirror``
as a derived cache keyed on ``self._ledger.version``.  Parsed by the
repro-lint tests — never imported or executed.
"""


class Ledger:
    def __init__(self) -> None:
        self._entries: list[int] = []
        self._totals_cache: int | None = None
        self._version = 0

    def add(self, value: int) -> None:
        # Mutating call on primary state with no counter bump.
        self._entries.append(value)

    def reset(self) -> None:
        # Rebinding primary state with no counter bump.
        self._entries = []

    def entries(self) -> list[int]:
        return list(self._entries)


class Mirror:
    def __init__(self, ledger: Ledger) -> None:
        self._ledger = ledger
        self._snapshot: list[int] = []

    def refresh(self) -> None:
        # Cache write that never consults the upstream counter.
        self._snapshot = [entry * 2 for entry in self._ledger.entries()]

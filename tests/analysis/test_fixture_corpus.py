"""The fixture corpus: bad examples fire their rule, good examples stay clean.

Each corpus file targets exactly one rule, so linting a *bad* fixture with
every rule enabled must yield findings for that rule alone — proving both
that the rule fires and that the others stay quiet on realistic code.
"""

from __future__ import annotations

import pytest

from lint_helpers import FIXTURES, lint_fixture

#: (fixture, rule expected to fire, expected active-finding count).
BAD_FIXTURES = [
    ("r1_determinism_bad.py", "R1", 9),
    ("r2_ordering_bad.py", "R2", 6),
    ("r3_cache_bad.py", "R3", 3),
    ("r5_float_bad.py", "R5", 5),
    ("r6_typing_bad.py", "R6", 7),
    ("r8_error_bad.py", "R8", 4),
]

GOOD_FIXTURES = [
    "r1_determinism_good.py",
    "r2_ordering_good.py",
    "r3_cache_good.py",
    "r5_float_good.py",
    "r6_typing_good.py",
    "r8_error_good.py",
]


def test_corpus_is_complete() -> None:
    """Every corpus file is referenced by exactly one parametrized case."""
    referenced = {name for name, _, _ in BAD_FIXTURES}
    referenced.update(GOOD_FIXTURES)
    referenced.add("suppressed_examples.py")
    on_disk = {path.name for path in FIXTURES.glob("*.py")}
    assert on_disk == referenced


@pytest.mark.parametrize(("name", "rule_id", "expected"), BAD_FIXTURES)
def test_bad_fixture_fires_only_its_rule(name: str, rule_id: str, expected: int) -> None:
    result = lint_fixture(name)
    assert {finding.rule for finding in result.active} == {rule_id}
    assert len(result.active) == expected
    assert not result.suppressed


@pytest.mark.parametrize("name", GOOD_FIXTURES)
def test_good_fixture_is_clean(name: str) -> None:
    result = lint_fixture(name)
    assert result.active == []
    assert not result.suppressed
    assert result.checked_files == 1


def test_suppressed_examples_are_silenced() -> None:
    result = lint_fixture("suppressed_examples.py")
    assert result.active == []
    suppressed = result.suppressed
    assert len(suppressed) == 3
    assert {finding.rule for finding in suppressed} == {"R1"}


def test_findings_carry_locations_and_messages() -> None:
    result = lint_fixture("r5_float_bad.py", "R5")
    finding = result.active[0]
    assert finding.path.endswith("r5_float_bad.py")
    assert finding.line > 1
    assert finding.column >= 1
    assert "equality" in finding.message
    assert finding.location() == f"{finding.path}:{finding.line}:{finding.column}"

"""The repro-lint CLI: argument handling, exit codes, report output."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from lint_helpers import FIXTURES
from repro.analysis.cli import main

BAD = str(FIXTURES / "r5_float_bad.py")
GOOD = str(FIXTURES / "r5_float_good.py")


def test_exit_zero_on_clean(capsys: pytest.CaptureFixture[str]) -> None:
    assert main([GOOD, "--select", "R5,R6"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_exit_one_on_findings(capsys: pytest.CaptureFixture[str]) -> None:
    assert main([BAD, "--select", "R5"]) == 1
    out = capsys.readouterr().out
    assert "R5[float-equality]" in out


def test_select_limits_rules(capsys: pytest.CaptureFixture[str]) -> None:
    # R5 violations are invisible when only R1 runs.
    assert main([BAD, "--select", "R1"]) == 0
    capsys.readouterr()


def test_ignore_excludes_rules(capsys: pytest.CaptureFixture[str]) -> None:
    assert main([BAD, "--ignore", "float-equality"]) == 0
    capsys.readouterr()


def test_unknown_rule_is_a_usage_error() -> None:
    with pytest.raises(SystemExit, match="unknown rule"):
        main([GOOD, "--select", "R99"])


def test_missing_path_is_a_usage_error(capsys: pytest.CaptureFixture[str]) -> None:
    with pytest.raises(SystemExit):
        main(["no/such/file.py"])
    assert "do not exist" in capsys.readouterr().err


def test_no_paths_without_default_tree(
    tmp_path: Path,
    monkeypatch: pytest.MonkeyPatch,
    capsys: pytest.CaptureFixture[str],
) -> None:
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit):
        main([])
    assert "src/repro does not exist" in capsys.readouterr().err


def test_list_rules(capsys: pytest.CaptureFixture[str]) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6", "R7"):
        assert rule_id in out


def test_json_output_to_file(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    report_path = tmp_path / "report.json"
    code = main([BAD, "--select", "R5", "--format", "json", "--output", str(report_path)])
    assert code == 1
    document = json.loads(report_path.read_text())
    assert document["clean"] is False
    assert document["counts"] == {"R5": 5}
    # The console still carries an actionable one-line summary.
    out = capsys.readouterr().out
    assert "5 active finding(s)" in out


def test_text_output_to_file(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    report_path = tmp_path / "report.txt"
    assert main([GOOD, "--select", "R5", "--output", str(report_path)]) == 0
    assert "clean" in report_path.read_text()
    assert "clean" in capsys.readouterr().out


def test_show_suppressed_flag(capsys: pytest.CaptureFixture[str]) -> None:
    target = str(FIXTURES / "suppressed_examples.py")
    assert main([target, "--select", "R1", "--show-suppressed"]) == 0
    assert "(suppressed)" in capsys.readouterr().out


def test_module_entry_point_matches_cli() -> None:
    from repro.analysis import __main__  # noqa: F401  (importable entry point)

"""R8 error-discipline rule: broad handlers must re-raise, record, or justify."""

from __future__ import annotations

from pathlib import Path

from lint_helpers import lint_fixture, lint_source


def test_bad_fixture_findings_name_the_caught_type() -> None:
    result = lint_fixture("r8_error_bad.py", "R8")
    assert len(result.active) == 4
    messages = [finding.message for finding in result.active]
    assert any("<bare>" in message for message in messages)
    assert any("BaseException" in message for message in messages)
    assert all("neither re-raises nor emits" in message for message in messages)


def test_good_fixture_is_clean() -> None:
    result = lint_fixture("r8_error_good.py", "R8")
    assert result.active == []


def test_narrow_handlers_are_out_of_scope(tmp_path: Path) -> None:
    source = (
        "def parse(payload: str) -> int:\n"
        "    try:\n"
        "        return int(payload)\n"
        "    except ValueError:\n"
        "        return 0\n"
    )
    assert lint_source(tmp_path, source, "R8").active == []


def test_tuple_containing_exception_is_broad(tmp_path: Path) -> None:
    source = (
        "def parse(payload: str) -> int:\n"
        "    try:\n"
        "        return int(payload)\n"
        "    except (ValueError, Exception):\n"
        "        return 0\n"
    )
    findings = lint_source(tmp_path, source, "R8").active
    assert len(findings) == 1
    assert findings[0].rule == "R8"


def test_attribute_qualified_exception_is_broad(tmp_path: Path) -> None:
    source = (
        "import builtins\n"
        "def parse(payload: str) -> int:\n"
        "    try:\n"
        "        return int(payload)\n"
        "    except builtins.Exception:\n"
        "        return 0\n"
    )
    assert len(lint_source(tmp_path, source, "R8").active) == 1


def test_reraise_inside_conditional_counts(tmp_path: Path) -> None:
    source = (
        "def parse(payload: str, strict: bool) -> int:\n"
        "    try:\n"
        "        return int(payload)\n"
        "    except Exception:\n"
        "        if strict:\n"
        "            raise\n"
        "        return 0\n"
    )
    assert lint_source(tmp_path, source, "R8").active == []


def test_registered_emitter_method_call_counts(tmp_path: Path) -> None:
    source = (
        "class Sweep:\n"
        "    def run(self, payload: str) -> object:\n"
        "        try:\n"
        "            return int(payload)\n"
        "        except Exception as error:\n"
        "            return self.task_failure_record(error)\n"
    )
    assert lint_source(tmp_path, source, "R8").active == []


def test_unregistered_call_does_not_count(tmp_path: Path) -> None:
    source = (
        "def run(payload: str) -> int:\n"
        "    try:\n"
        "        return int(payload)\n"
        "    except Exception as error:\n"
        "        print(error)\n"
        "        return 0\n"
    )
    assert len(lint_source(tmp_path, source, "R8").active) == 1


def test_suppression_comment_silences(tmp_path: Path) -> None:
    source = (
        "def run(payload: str) -> int:\n"
        "    try:\n"
        "        return int(payload)\n"
        "    except Exception:  # repro-lint: ignore[R8] best-effort probe\n"
        "        return 0\n"
    )
    result = lint_source(tmp_path, source, "R8")
    assert result.active == []
    assert [finding.rule for finding in result.suppressed] == ["R8"]

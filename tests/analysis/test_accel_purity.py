"""R4 (accel purity): project-level cross-referencing against a test tree.

These tests build miniature projects under ``tmp_path``.  The flag and
marker names are deliberately distinct from the live switchboard's so this
file never influences the real cross-reference scan.
"""

from __future__ import annotations

from pathlib import Path

from lint_helpers import rules_by_id
from repro.analysis.contracts import LintConfig
from repro.analysis.framework import run_lint

ACCEL_SOURCE = (
    "from dataclasses import dataclass\n"
    "\n"
    "\n"
    "@dataclass(frozen=True)\n"
    "class AccelFlags:\n"
    "    fused_update: bool = True\n"
    "    mirror_cache: bool = False\n"
    "    label: str = 'not a flag'\n"
)


def _config() -> LintConfig:
    return LintConfig(accel_module="accel.py", accel_class="AccelFlags")


def _project(tmp_path: Path, test_body: str | None) -> tuple[Path, Path | None]:
    src = tmp_path / "src"
    src.mkdir()
    (src / "accel.py").write_text(ACCEL_SOURCE)
    tests_root: Path | None = None
    if test_body is not None:
        tests_root = tmp_path / "tests"
        tests_root.mkdir()
        (tests_root / "test_flags.py").write_text(test_body)
    return src, tests_root


def test_uncovered_flag_is_reported(tmp_path: Path) -> None:
    body = "def test_fused() -> None:\n    drive('fused_update')  # override(x)\n"
    src, tests_root = _project(tmp_path, body)
    result = run_lint(
        [src], _config(), rules=rules_by_id("R4"), root=tmp_path, tests_root=tests_root
    )
    assert len(result.active) == 1
    finding = result.active[0]
    assert "mirror_cache" in finding.message
    assert finding.path.endswith("accel.py")
    assert finding.line == 7  # the flag's definition line


def test_all_flags_covered_is_clean(tmp_path: Path) -> None:
    body = (
        "def test_both() -> None:\n"
        "    drive('fused_update', 'mirror_cache')  # override(x)\n"
    )
    src, tests_root = _project(tmp_path, body)
    result = run_lint(
        [src], _config(), rules=rules_by_id("R4"), root=tmp_path, tests_root=tests_root
    )
    assert result.active == []


def test_naming_without_driving_does_not_count(tmp_path: Path) -> None:
    body = "def test_mention() -> None:\n    assert 'fused_update' and 'mirror_cache'\n"
    src, tests_root = _project(tmp_path, body)
    result = run_lint(
        [src], _config(), rules=rules_by_id("R4"), root=tmp_path, tests_root=tests_root
    )
    assert len(result.active) == 2


def test_missing_test_tree_is_an_explicit_finding(tmp_path: Path) -> None:
    src, _ = _project(tmp_path, None)
    result = run_lint(
        [src], _config(), rules=rules_by_id("R4"), root=tmp_path, tests_root=None
    )
    assert len(result.active) == 1
    assert "no test tree" in result.active[0].message


def test_exempt_flags_are_skipped(tmp_path: Path) -> None:
    src, tests_root = _project(tmp_path, "# empty test tree\n")
    config = LintConfig(
        accel_module="accel.py",
        accel_class="AccelFlags",
        accel_exempt=("fused_update", "mirror_cache"),
    )
    result = run_lint(
        [src], config, rules=rules_by_id("R4"), root=tmp_path, tests_root=tests_root
    )
    assert result.active == []


def test_missing_flags_class_is_an_explicit_finding(tmp_path: Path) -> None:
    src = tmp_path / "src"
    src.mkdir()
    (src / "accel.py").write_text("FLAGS = {'fused_update': True}\n")
    result = run_lint(
        [src], _config(), rules=rules_by_id("R4"), root=tmp_path, tests_root=tmp_path
    )
    assert len(result.active) == 1
    assert "cannot be checked" in result.active[0].message


def test_switchboard_outside_linted_paths_is_silent(tmp_path: Path) -> None:
    other = tmp_path / "src"
    other.mkdir()
    (other / "plain.py").write_text("x = 1\n")
    result = run_lint(
        [other], _config(), rules=rules_by_id("R4"), root=tmp_path, tests_root=tmp_path
    )
    assert result.active == []


def test_disabled_when_no_accel_module_configured(tmp_path: Path) -> None:
    src, tests_root = _project(tmp_path, None)
    result = run_lint(
        [src], LintConfig(), rules=rules_by_id("R4"), root=tmp_path, tests_root=tests_root
    )
    assert result.active == []

"""The gate the CI job enforces: repro-lint runs clean on the live tree.

A failure here means a reproducibility invariant regressed (or a new,
justified exception needs a suppression comment) — fix the code or add a
``# repro-lint: ignore[...]`` with a justification, never weaken the rule.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.contracts import default_config
from repro.analysis.framework import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_live_src_tree_is_clean() -> None:
    result = run_lint(
        [REPO_ROOT / "src" / "repro"],
        default_config(),
        root=REPO_ROOT,
        tests_root=REPO_ROOT / "tests",
    )
    assert result.active == [], "\n".join(
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in result.active
    )
    # The linted surface is the whole library, not a subset.
    assert result.checked_files >= 90


def test_default_config_references_real_modules() -> None:
    """Contract targets must exist, or R3/R4 silently stop protecting them."""
    config = default_config()
    for contract in config.cache_contracts:
        assert (REPO_ROOT / "src" / contract.module).is_file(), contract.module
    assert (REPO_ROOT / "src" / config.accel_module).is_file()
    for module in config.determinism_exempt + config.clock_exempt:
        assert (REPO_ROOT / "src" / module).is_file(), module


def test_every_live_suppression_carries_a_justification() -> None:
    """``ignore[RULE]`` alone is not enough: say *why* it is safe."""
    pattern = re.compile(r"repro-lint:\s*ignore\[[^\]]+\]\s*(\S.*)?$")
    offenders: list[str] = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        for number, line in enumerate(path.read_text().splitlines(), start=1):
            match = pattern.search(line)
            if match is not None and not match.group(1):
                offenders.append(f"{path}:{number}")
    assert offenders == [], offenders

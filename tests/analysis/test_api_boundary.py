"""R9 — the api-boundary rule: client trees import only the facade."""

from repro.analysis.contracts import LintConfig, default_config
from repro.analysis.framework import run_lint

from lint_helpers import rules_by_id


def _config(**overrides):
    defaults = {
        "api_client_dirs": ("examples",),
        "api_allowed_imports": ("repro", "repro.api"),
    }
    defaults.update(overrides)
    return LintConfig(**defaults)


def _lint_project(tmp_path, config=None):
    """Lint a miniature project rooted at ``tmp_path`` with R9 only."""
    src = tmp_path / "src"
    src.mkdir(exist_ok=True)
    return run_lint(
        [src],
        config if config is not None else _config(),
        rules=rules_by_id("R9"),
        root=tmp_path,
    )


def _client(tmp_path, source, name="client.py", directory="examples"):
    path = tmp_path / directory / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)


class TestCleanClients:
    def test_facade_imports_pass(self, tmp_path):
        _client(
            tmp_path,
            "from repro.api import ReputationService, run_scenario\n"
            "import repro\n"
            "from repro import quick_scenario\n",
        )
        assert _lint_project(tmp_path).findings == []

    def test_non_repro_imports_ignored(self, tmp_path):
        _client(tmp_path, "import json\nfrom pathlib import Path\n")
        assert _lint_project(tmp_path).findings == []

    def test_relative_imports_ignored(self, tmp_path):
        _client(tmp_path, "from . import helpers\n")
        assert _lint_project(tmp_path).findings == []

    def test_reproducibility_module_is_not_repro(self, tmp_path):
        # Prefix matching must be on dotted segments, not raw strings.
        _client(tmp_path, "import reproducibility\nfrom reprox.api import x\n")
        assert _lint_project(tmp_path).findings == []


class TestFlaggedClients:
    def test_internal_from_import_flagged(self, tmp_path):
        _client(tmp_path, "from repro.reputation.eigentrust import EigenTrust\n")
        findings = _lint_project(tmp_path).active
        assert len(findings) == 1
        assert findings[0].rule == "R9"
        assert "repro.reputation.eigentrust" in findings[0].message
        assert findings[0].path == "examples/client.py"

    def test_internal_plain_import_flagged(self, tmp_path):
        _client(tmp_path, "import repro.simulation.engine\n")
        findings = _lint_project(tmp_path).active
        assert len(findings) == 1
        assert "repro.simulation.engine" in findings[0].message

    def test_nested_function_import_flagged(self, tmp_path):
        _client(
            tmp_path,
            "def helper():\n    from repro.core.backend import resolve_backend\n",
        )
        findings = _lint_project(tmp_path).active
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_subdirectories_are_walked(self, tmp_path):
        _client(
            tmp_path,
            "from repro.faults.plans import FaultPlan\n",
            name="nested/deep.py",
        )
        findings = _lint_project(tmp_path).active
        assert len(findings) == 1
        assert findings[0].path == "examples/nested/deep.py"

    def test_unparsable_client_is_a_finding(self, tmp_path):
        _client(tmp_path, "def broken(:\n")
        findings = _lint_project(tmp_path).active
        assert len(findings) == 1
        assert "does not parse" in findings[0].message


class TestSuppression:
    def test_inline_suppression_honoured(self, tmp_path):
        _client(
            tmp_path,
            "from repro.core import accel  # repro-lint: ignore[R9] migration pending\n",
        )
        result = _lint_project(tmp_path)
        assert result.active == []
        assert len(result.suppressed) == 1


class TestConfiguration:
    def test_empty_client_dirs_disables_rule(self, tmp_path):
        _client(tmp_path, "from repro.simulation.engine import Simulation\n")
        config = _config(api_client_dirs=())
        assert _lint_project(tmp_path, config).findings == []

    def test_missing_client_dir_is_fine(self, tmp_path):
        config = _config(api_client_dirs=("examples", "does-not-exist"))
        assert _lint_project(tmp_path, config).findings == []

    def test_multiple_client_dirs_all_checked(self, tmp_path):
        _client(tmp_path, "from repro.simulation.engine import x\n", directory="examples")
        _client(tmp_path, "from repro.reputation.beta import y\n", directory="benchmarks")
        config = _config(api_client_dirs=("examples", "benchmarks"))
        findings = _lint_project(tmp_path, config).active
        assert sorted(finding.path for finding in findings) == [
            "benchmarks/client.py",
            "examples/client.py",
        ]


class TestLiveTree:
    def test_default_config_binds_examples_and_benchmarks(self):
        config = default_config()
        assert config.api_client_dirs == ("examples", "benchmarks")
        assert config.api_allowed_imports == ("repro", "repro.api")

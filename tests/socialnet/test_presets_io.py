"""Unit tests for network presets and graph serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.socialnet.presets import (
    NETWORK_PRESETS,
    generate_preset,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    preset_spec,
)


class TestPresets:
    def test_every_preset_generates_a_connected_network(self):
        for name in NETWORK_PRESETS:
            graph = generate_preset(name, seed=1)
            assert len(graph) == NETWORK_PRESETS[name].n_users
            assert graph.is_connected()

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            preset_spec("metaverse")

    def test_preset_spec_reseeds_without_mutating_the_registry(self):
        spec = preset_spec("village", seed=99)
        assert spec.seed == 99
        assert NETWORK_PRESETS["village"].seed == 0

    def test_file_sharing_preset_is_more_adversarial_than_friendship(self):
        file_sharing = generate_preset("file-sharing", seed=2)
        friendship = generate_preset("friendship", seed=2)
        assert file_sharing.honest_fraction() < friendship.honest_fraction()

    def test_friendship_preset_has_communities(self):
        graph = generate_preset("friendship", seed=3)
        assert any(user.community is not None for user in graph.users())


class TestGraphSerialization:
    def test_dict_round_trip_preserves_structure(self, tiny_graph):
        restored = graph_from_dict(graph_to_dict(tiny_graph))
        assert set(restored.user_ids()) == set(tiny_graph.user_ids())
        assert restored.number_of_edges() == tiny_graph.number_of_edges()
        for a in tiny_graph.user_ids():
            for b in tiny_graph.user_ids():
                if a >= b:
                    continue
                assert restored.are_connected(a, b) == tiny_graph.are_connected(a, b)
                assert restored.tie_strength(a, b) == pytest.approx(tiny_graph.tie_strength(a, b))

    def test_round_trip_preserves_users_and_profiles(self, tiny_graph):
        restored = graph_from_dict(graph_to_dict(tiny_graph))
        original = tiny_graph.user("carol")
        copy = restored.user("carol")
        assert copy.honesty == original.honesty
        assert copy.privacy_concern == original.privacy_concern
        assert len(copy.profile) == len(original.profile)
        assert copy.profile.get("health_record").sensitivity.name == "CRITICAL"

    def test_json_round_trip(self, small_graph):
        restored = graph_from_json(graph_to_json(small_graph))
        assert len(restored) == len(small_graph)
        assert restored.number_of_edges() == small_graph.number_of_edges()
        assert restored.honest_fraction() == pytest.approx(small_graph.honest_fraction())

    def test_malformed_documents_rejected(self):
        with pytest.raises(ConfigurationError):
            graph_from_json("{broken")
        with pytest.raises(ConfigurationError):
            graph_from_dict({"edges": []})
        with pytest.raises(ConfigurationError):
            graph_from_dict(
                {
                    "users": [
                        {
                            "user_id": "a",
                            "profile": [
                                {"name": "x", "value": 1, "sensitivity": "ULTRA"}
                            ],
                        }
                    ],
                    "edges": [],
                }
            )

"""Unit tests for the SocialGraph wrapper."""

import pytest

from repro.errors import ConfigurationError, UnknownPeerError
from repro.socialnet.graph import SocialGraph
from repro.socialnet.user import User


def make_user(user_id: str, honesty: float = 0.9) -> User:
    return User(user_id=user_id, honesty=honesty)


@pytest.fixture()
def triangle() -> SocialGraph:
    graph = SocialGraph([make_user("a"), make_user("b"), make_user("c", honesty=0.1)])
    graph.add_relationship("a", "b", strength=0.5)
    graph.add_relationship("b", "c")
    return graph


class TestConstruction:
    def test_add_user_and_len(self, triangle):
        assert len(triangle) == 3
        assert "a" in triangle
        assert set(iter(triangle)) == {"a", "b", "c"}

    def test_relationship_requires_existing_users(self, triangle):
        with pytest.raises(UnknownPeerError):
            triangle.add_relationship("a", "zz")

    def test_self_relationship_rejected(self, triangle):
        with pytest.raises(ConfigurationError):
            triangle.add_relationship("a", "a")

    def test_remove_user(self, triangle):
        triangle.remove_user("c")
        assert "c" not in triangle
        assert triangle.number_of_edges() == 1

    def test_remove_unknown_user_raises(self, triangle):
        with pytest.raises(UnknownPeerError):
            triangle.remove_user("zz")


class TestQueries:
    def test_neighbors(self, triangle):
        assert set(triangle.neighbors("b")) == {"a", "c"}
        assert triangle.neighbors("a") == ["b"]

    def test_are_connected(self, triangle):
        assert triangle.are_connected("a", "b")
        assert not triangle.are_connected("a", "c")

    def test_tie_strength(self, triangle):
        assert triangle.tie_strength("a", "b") == 0.5
        assert triangle.tie_strength("b", "c") == 1.0
        assert triangle.tie_strength("a", "c") == 0.0

    def test_degree(self, triangle):
        assert triangle.degree("b") == 2
        assert triangle.degree("a") == 1

    def test_social_distance(self, triangle):
        assert triangle.social_distance("a", "c") == 2
        assert triangle.social_distance("a", "a") == 0

    def test_social_distance_unreachable(self, triangle):
        triangle.add_user(make_user("island"))
        assert triangle.social_distance("a", "island") is None

    def test_unknown_user_raises(self, triangle):
        with pytest.raises(UnknownPeerError):
            triangle.neighbors("zz")
        with pytest.raises(UnknownPeerError):
            triangle.user("zz")


class TestStatistics:
    def test_average_degree(self, triangle):
        assert triangle.average_degree() == pytest.approx(4 / 3)

    def test_empty_graph_statistics(self):
        graph = SocialGraph()
        assert graph.average_degree() == 0.0
        assert graph.clustering_coefficient() == 0.0
        assert graph.honest_fraction() == 0.0
        assert graph.is_connected()
        assert graph.largest_component() == []

    def test_honest_fraction(self, triangle):
        assert triangle.honest_fraction() == pytest.approx(2 / 3)

    def test_is_connected_and_largest_component(self, triangle):
        assert triangle.is_connected()
        triangle.add_user(make_user("island"))
        assert not triangle.is_connected()
        assert set(triangle.largest_component()) == {"a", "b", "c"}


class TestSubgraphAndExport:
    def test_to_networkx_is_a_copy(self, triangle):
        nx_graph = triangle.to_networkx()
        nx_graph.remove_node("a")
        assert "a" in triangle

    def test_subgraph_keeps_edges_and_strengths(self, triangle):
        sub = triangle.subgraph(["a", "b"])
        assert len(sub) == 2
        assert sub.are_connected("a", "b")
        assert sub.tie_strength("a", "b") == 0.5

    def test_subgraph_unknown_user_rejected(self, triangle):
        with pytest.raises(UnknownPeerError):
            triangle.subgraph(["a", "zz"])

"""Unit tests for users, profiles and attribute sensitivity."""

import pytest

from repro.errors import ConfigurationError
from repro.socialnet.user import (
    AttributeSensitivity,
    ProfileAttribute,
    User,
    UserProfile,
    standard_profile,
)


class TestAttributeSensitivity:
    def test_ordering(self):
        assert AttributeSensitivity.PUBLIC < AttributeSensitivity.CRITICAL
        assert AttributeSensitivity.MEDIUM >= AttributeSensitivity.LOW

    def test_exposure_weights_monotone(self):
        weights = [level.exposure_weight for level in AttributeSensitivity]
        assert weights == sorted(weights)

    def test_public_has_zero_exposure(self):
        assert AttributeSensitivity.PUBLIC.exposure_weight == 0.0

    def test_critical_has_full_exposure(self):
        assert AttributeSensitivity.CRITICAL.exposure_weight == 1.0


class TestProfileAttribute:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            ProfileAttribute(name="", value=1)

    def test_default_sensitivity_low(self):
        assert ProfileAttribute("city", "Nantes").sensitivity is AttributeSensitivity.LOW

    def test_is_frozen(self):
        attribute = ProfileAttribute("city", "Nantes")
        with pytest.raises(AttributeError):
            attribute.value = "Paris"


class TestUserProfile:
    def test_add_and_get(self):
        profile = UserProfile()
        profile.add(ProfileAttribute("age", 30, AttributeSensitivity.MEDIUM))
        assert profile.get("age").value == 30
        assert "age" in profile
        assert len(profile) == 1

    def test_add_replaces_existing(self):
        profile = UserProfile()
        profile.add(ProfileAttribute("age", 30))
        profile.add(ProfileAttribute("age", 31))
        assert profile.get("age").value == 31
        assert len(profile) == 1

    def test_get_missing_raises(self):
        with pytest.raises(ConfigurationError):
            UserProfile().get("missing")

    def test_sensitive_attributes_filter(self):
        profile = standard_profile("u1")
        sensitive = profile.sensitive_attributes(AttributeSensitivity.HIGH)
        assert all(a.sensitivity >= AttributeSensitivity.HIGH for a in sensitive)
        assert len(sensitive) >= 2

    def test_total_exposure_weight_positive(self):
        assert standard_profile("u1").total_exposure_weight() > 0.0

    def test_iteration_yields_attributes(self):
        names = {attribute.name for attribute in standard_profile("u1")}
        assert "health_record" in names
        assert "display_name" in names


class TestStandardProfile:
    def test_has_every_sensitivity_class(self):
        profile = standard_profile("u1", age=44, city="Lyon")
        sensitivities = {attribute.sensitivity for attribute in profile}
        assert sensitivities == set(AttributeSensitivity)

    def test_uses_provided_values(self):
        profile = standard_profile("u1", age=44, city="Lyon")
        assert profile.get("age").value == 44
        assert profile.get("city").value == "Lyon"


class TestUser:
    def test_validates_behavioural_parameters(self):
        with pytest.raises(ConfigurationError):
            User(user_id="u", honesty=1.5)
        with pytest.raises(ConfigurationError):
            User(user_id="u", activity=-0.1)
        with pytest.raises(ConfigurationError):
            User(user_id="u", privacy_concern=2.0)

    def test_requires_user_id(self):
        with pytest.raises(ConfigurationError):
            User(user_id="")

    def test_is_honest_threshold(self):
        assert User(user_id="a", honesty=0.5).is_honest
        assert not User(user_id="b", honesty=0.49).is_honest

    def test_equality_and_hash_by_id(self):
        first = User(user_id="a", honesty=0.9)
        second = User(user_id="a", honesty=0.1)
        assert first == second
        assert hash(first) == hash(second)
        assert first != User(user_id="b")

    def test_equality_with_other_types(self):
        assert User(user_id="a") != "a"

"""Unit tests for community helpers."""

from repro.socialnet.communities import (
    community_partition,
    intra_community_fraction,
    modularity,
)
from repro.socialnet.generators import SocialNetworkSpec, generate_social_network
from repro.socialnet.graph import SocialGraph
from repro.socialnet.user import User


def test_partition_covers_every_user(small_graph):
    partition = community_partition(small_graph)
    assert set(partition) == set(small_graph.user_ids())


def test_sbm_graph_uses_explicit_labels():
    graph = generate_social_network(
        SocialNetworkSpec(n_users=40, topology="sbm", n_communities=4, seed=1)
    )
    partition = community_partition(graph)
    explicit = {user.user_id: user.community for user in graph.users()}
    assert partition == explicit


def test_sbm_communities_are_cohesive():
    graph = generate_social_network(
        SocialNetworkSpec(
            n_users=60,
            topology="sbm",
            n_communities=3,
            inter_community_probability=0.01,
            seed=2,
        )
    )
    partition = community_partition(graph)
    assert intra_community_fraction(graph, partition) > 0.6
    assert modularity(graph, partition) > 0.2


def test_modularity_zero_without_edges():
    graph = SocialGraph([User(user_id="a"), User(user_id="b")])
    assert modularity(graph, {"a": 0, "b": 1}) == 0.0


def test_intra_fraction_without_edges_is_one():
    graph = SocialGraph([User(user_id="a"), User(user_id="b")])
    assert intra_community_fraction(graph, {"a": 0, "b": 1}) == 1.0


def test_empty_graph_partition_is_empty():
    assert community_partition(SocialGraph()) == {}

"""Unit tests for synthetic social-network generation."""

import pytest

from repro.errors import ConfigurationError
from repro.socialnet.generators import (
    TOPOLOGIES,
    SocialNetworkSpec,
    generate_social_network,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        SocialNetworkSpec()

    def test_rejects_tiny_population(self):
        with pytest.raises(ConfigurationError):
            SocialNetworkSpec(n_users=1)

    def test_rejects_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            SocialNetworkSpec(topology="smallworldish")

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            SocialNetworkSpec(malicious_fraction=1.2)
        with pytest.raises(ConfigurationError):
            SocialNetworkSpec(rewiring_probability=-0.1)

    def test_rejects_inverted_privacy_range(self):
        with pytest.raises(ConfigurationError):
            SocialNetworkSpec(privacy_concern_range=(0.8, 0.2))

    def test_rejects_zero_communities(self):
        with pytest.raises(ConfigurationError):
            SocialNetworkSpec(n_communities=0)


@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestEveryTopology:
    def test_generates_requested_population(self, topology):
        graph = generate_social_network(SocialNetworkSpec(n_users=40, topology=topology, seed=3))
        assert len(graph) == 40

    def test_graph_is_connected(self, topology):
        graph = generate_social_network(SocialNetworkSpec(n_users=40, topology=topology, seed=3))
        assert graph.is_connected()

    def test_user_parameters_within_bounds(self, topology):
        graph = generate_social_network(SocialNetworkSpec(n_users=30, topology=topology, seed=3))
        for user in graph.users():
            assert 0.0 <= user.honesty <= 1.0
            assert 0.0 <= user.competence <= 1.0
            assert 0.2 <= user.privacy_concern <= 0.9


class TestDeterminismAndMix:
    def test_same_seed_same_graph(self):
        spec = SocialNetworkSpec(n_users=30, seed=11)
        first = generate_social_network(spec)
        second = generate_social_network(spec)
        assert first.user_ids() == second.user_ids()
        assert first.number_of_edges() == second.number_of_edges()
        assert [u.honesty for u in first.users()] == [u.honesty for u in second.users()]

    def test_different_seed_changes_behaviour(self):
        first = generate_social_network(SocialNetworkSpec(n_users=30, seed=1))
        second = generate_social_network(SocialNetworkSpec(n_users=30, seed=2))
        assert [u.honesty for u in first.users()] != [u.honesty for u in second.users()]

    def test_malicious_fraction_respected(self):
        graph = generate_social_network(
            SocialNetworkSpec(n_users=100, malicious_fraction=0.3, seed=4)
        )
        dishonest = sum(1 for user in graph.users() if not user.is_honest)
        assert dishonest == 30

    def test_zero_malicious_fraction(self):
        graph = generate_social_network(
            SocialNetworkSpec(n_users=50, malicious_fraction=0.0, seed=4)
        )
        assert graph.honest_fraction() == 1.0

    def test_sbm_assigns_communities(self):
        graph = generate_social_network(
            SocialNetworkSpec(n_users=40, topology="sbm", n_communities=4, seed=2)
        )
        labels = {user.community for user in graph.users()}
        assert len(labels) >= 2
        assert all(label is not None for label in labels)

    def test_mean_degree_roughly_respected(self):
        graph = generate_social_network(
            SocialNetworkSpec(n_users=100, topology="erdos_renyi", mean_degree=8.0, seed=6)
        )
        assert 4.0 < graph.average_degree() < 12.0

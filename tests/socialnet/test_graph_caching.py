"""The cached listing views of SocialGraph and their invalidation."""

from repro.socialnet.graph import SocialGraph
from repro.socialnet.user import User


def _graph(n: int = 4) -> SocialGraph:
    graph = SocialGraph(User(user_id=f"u{i}") for i in range(n))
    graph.add_relationship("u0", "u1")
    graph.add_relationship("u1", "u2")
    return graph


class TestCachedViews:
    def test_repeated_calls_return_the_same_objects(self):
        graph = _graph()
        assert graph.neighbors("u1") is graph.neighbors("u1")
        assert graph.users() is graph.users()
        assert graph.user_ids() is graph.user_ids()

    def test_neighbors_content_is_correct(self):
        graph = _graph()
        assert sorted(graph.neighbors("u1")) == ["u0", "u2"]
        assert graph.neighbors("u3") == []

    def test_add_relationship_invalidates_neighbors(self):
        graph = _graph()
        before = graph.neighbors("u1")
        graph.add_relationship("u1", "u3")
        after = graph.neighbors("u1")
        assert after is not before
        assert sorted(after) == ["u0", "u2", "u3"]

    def test_add_user_invalidates_listings(self):
        graph = _graph()
        ids_before = graph.user_ids()
        users_before = graph.users()
        graph.add_user(User(user_id="u9"))
        assert graph.user_ids() is not ids_before
        assert graph.users() is not users_before
        assert "u9" in graph.user_ids()

    def test_remove_user_invalidates_everything(self):
        graph = _graph()
        graph.neighbors("u1")
        graph.remove_user("u2")
        assert sorted(graph.neighbors("u1")) == ["u0"]
        assert "u2" not in graph.user_ids()
        assert all(user.user_id != "u2" for user in graph.users())

"""Unit tests for interaction traces."""

import pytest

from repro.errors import ConfigurationError
from repro.socialnet.graph import SocialGraph
from repro.socialnet.interactions import (
    Interaction,
    InteractionKind,
    InteractionTrace,
    InteractionTraceGenerator,
)
from repro.socialnet.user import User


class TestInteraction:
    def test_rejects_self_interaction(self):
        with pytest.raises(ConfigurationError):
            Interaction(time=0, initiator="a", partner="a", kind=InteractionKind.MESSAGE)

    def test_rejects_invalid_sensitivity(self):
        with pytest.raises(ConfigurationError):
            Interaction(
                time=0,
                initiator="a",
                partner="b",
                kind=InteractionKind.MESSAGE,
                payload_sensitivity=1.5,
            )


class TestInteractionTrace:
    def make_trace(self):
        trace = InteractionTrace()
        trace.append(Interaction(0, "a", "b", InteractionKind.MESSAGE))
        trace.append(Interaction(1, "b", "a", InteractionKind.RATING))
        trace.append(Interaction(4, "a", "c", InteractionKind.CONTENT_SHARE))
        return trace

    def test_len_and_iteration(self):
        trace = self.make_trace()
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_involving(self):
        trace = self.make_trace()
        assert len(trace.involving("a")) == 3
        assert len(trace.involving("c")) == 1
        assert trace.involving("zz") == []

    def test_initiated_by(self):
        trace = self.make_trace()
        assert len(trace.initiated_by("a")) == 2
        assert len(trace.initiated_by("c")) == 0

    def test_pair_count_is_direction_agnostic(self):
        trace = self.make_trace()
        assert trace.pair_count("a", "b") == 2
        assert trace.pair_count("b", "a") == 2
        assert trace.pair_count("b", "c") == 0

    def test_span(self):
        assert self.make_trace().span() == 5
        assert InteractionTrace().span() == 0


class TestGenerator:
    @pytest.fixture()
    def pair_graph(self):
        graph = SocialGraph(
            [
                User(user_id="a", activity=1.0, privacy_concern=0.5),
                User(user_id="b", activity=1.0, privacy_concern=0.5),
            ]
        )
        graph.add_relationship("a", "b")
        return graph

    def test_requires_two_users(self):
        graph = SocialGraph([User(user_id="solo")])
        with pytest.raises(ConfigurationError):
            InteractionTraceGenerator(graph)

    def test_rejects_negative_steps(self, pair_graph):
        generator = InteractionTraceGenerator(pair_graph)
        with pytest.raises(ConfigurationError):
            generator.generate(-1)

    def test_fully_active_pair_interacts_every_step(self, pair_graph):
        trace = InteractionTraceGenerator(pair_graph, seed=1).generate(10)
        assert len(trace) == 20  # both users initiate at activity 1.0

    def test_zero_steps_empty_trace(self, pair_graph):
        assert len(InteractionTraceGenerator(pair_graph).generate(0)) == 0

    def test_partners_are_neighbours(self, small_graph):
        trace = InteractionTraceGenerator(small_graph, seed=2).generate(5)
        assert len(trace) > 0
        for interaction in trace:
            assert small_graph.are_connected(interaction.initiator, interaction.partner)

    def test_sensitivity_bounded_by_privacy_concern(self, small_graph):
        trace = InteractionTraceGenerator(small_graph, seed=2).generate(5)
        for interaction in trace:
            concern = small_graph.user(interaction.initiator).privacy_concern
            assert interaction.payload_sensitivity <= concern + 1e-9

    def test_deterministic_for_seed(self, small_graph):
        first = InteractionTraceGenerator(small_graph, seed=7).generate(5)
        second = InteractionTraceGenerator(small_graph, seed=7).generate(5)
        assert [
            (i.time, i.initiator, i.partner, i.kind) for i in first
        ] == [(i.time, i.initiator, i.partner, i.kind) for i in second]

    def test_restricted_kinds(self, pair_graph):
        trace = InteractionTraceGenerator(
            pair_graph, kinds=[InteractionKind.MESSAGE], seed=3
        ).generate(5)
        assert {interaction.kind for interaction in trace} == {InteractionKind.MESSAGE}

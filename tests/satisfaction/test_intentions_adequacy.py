"""Unit tests for intentions and adequacy measures."""

import pytest

from repro.errors import ConfigurationError
from repro.satisfaction.adequacy import (
    consumer_adequacy,
    interaction_adequacy,
    provider_adequacy,
)
from repro.satisfaction.intentions import (
    ConsumerIntention,
    ProviderIntention,
    uniform_consumer_intention,
    uniform_provider_intention,
)


class TestConsumerIntention:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConsumerIntention("c", preferences={"p": 1.5})
        with pytest.raises(ConfigurationError):
            ConsumerIntention("c", default_preference=-0.1)

    def test_default_preference_for_unknown_provider(self):
        intention = ConsumerIntention("c", default_preference=0.4)
        assert intention.preference("unknown") == 0.4

    def test_set_and_get_preference(self):
        intention = ConsumerIntention("c")
        intention.set_preference("p", 0.9)
        assert intention.preference("p") == 0.9

    def test_update_from_experience_moves_towards_quality(self):
        intention = ConsumerIntention("c", preferences={"p": 0.5})
        intention.update_from_experience("p", 1.0, alpha=0.5)
        assert intention.preference("p") == 0.75
        intention.update_from_experience("p", 0.0, alpha=1.0)
        assert intention.preference("p") == 0.0

    def test_ranked_providers(self):
        intention = ConsumerIntention("c", preferences={"a": 0.2, "b": 0.9, "c": 0.9})
        assert intention.ranked_providers() == ["b", "c", "a"]

    def test_as_distribution_sums_to_one(self):
        intention = ConsumerIntention("c", preferences={"a": 0.2, "b": 0.6})
        distribution = intention.as_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_uniform_factory(self):
        intention = uniform_consumer_intention("c", ["a", "b"], preference=0.7)
        assert intention.preference("a") == 0.7
        assert intention.preference("zz") == 0.7


class TestProviderIntention:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProviderIntention("p", capacity=-1)
        with pytest.raises(ConfigurationError):
            ProviderIntention("p", topic_interest={"t": 2.0})

    def test_intention_for_topic_only(self):
        intention = ProviderIntention("p", topic_interest={"music": 0.9}, default_interest=0.2)
        assert intention.intention_for("music") == 0.9
        assert intention.intention_for("unknown") == 0.2

    def test_intention_blends_consumer_affinity(self):
        intention = ProviderIntention(
            "p", topic_interest={"music": 1.0}, consumer_affinity={"alice": 0.0}
        )
        blended = intention.intention_for("music", "alice")
        assert blended == pytest.approx(0.6)

    def test_setters(self):
        intention = ProviderIntention("p")
        intention.set_topic_interest("music", 0.8)
        intention.set_consumer_affinity("alice", 0.3)
        assert intention.topic_interest["music"] == 0.8
        assert intention.consumer_affinity["alice"] == 0.3

    def test_uniform_factory(self):
        intention = uniform_provider_intention("p", ["a", "b"], interest=0.6, capacity=3)
        assert intention.intention_for("a") == 0.6
        assert intention.capacity == 3


class TestAdequacy:
    def test_consumer_adequacy_is_preference(self):
        intention = ConsumerIntention("c", preferences={"p": 0.8})
        assert consumer_adequacy(intention, "p") == 0.8

    def test_provider_adequacy_is_intention(self):
        intention = ProviderIntention("p", topic_interest={"music": 0.7})
        assert provider_adequacy(intention, "music") == 0.7

    def test_interaction_adequacy_blends_quality_and_preference(self):
        assert interaction_adequacy(0.0, 1.0, quality_weight=1.0) == 1.0
        assert interaction_adequacy(1.0, 0.0, quality_weight=1.0) == 0.0
        assert interaction_adequacy(0.5, 0.5) == pytest.approx(0.5)
        blended = interaction_adequacy(1.0, 0.0, quality_weight=0.6)
        assert blended == pytest.approx(0.4)

    def test_interaction_adequacy_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            interaction_adequacy(1.5, 0.5)
        with pytest.raises(ConfigurationError):
            interaction_adequacy(0.5, 0.5, quality_weight=2.0)

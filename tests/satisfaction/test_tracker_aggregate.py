"""Unit tests for the satisfaction tracker and aggregation."""

from typing import ClassVar

import pytest

from repro.errors import ConfigurationError
from repro.satisfaction.aggregate import (
    global_satisfaction,
    local_satisfaction,
    per_community_satisfaction,
    summarize,
)
from repro.satisfaction.tracker import SatisfactionTracker


class TestSatisfactionTracker:
    def test_prior_before_observations(self):
        tracker = SatisfactionTracker(initial=0.6)
        assert tracker.satisfaction("nobody") == 0.6
        assert tracker.allocation_satisfaction("nobody") == 0.6
        assert tracker.windowed_satisfaction("nobody") == 0.6

    def test_first_observation_sets_level(self):
        tracker = SatisfactionTracker(alpha=0.2)
        tracker.observe("alice", 0.9)
        assert tracker.satisfaction("alice") == pytest.approx(0.9)

    def test_long_run_convergence(self):
        tracker = SatisfactionTracker(alpha=0.3)
        for _ in range(100):
            tracker.observe("alice", 0.8)
        assert tracker.satisfaction("alice") == pytest.approx(0.8, abs=1e-6)

    def test_ewma_emphasises_recent_regime(self):
        tracker = SatisfactionTracker(alpha=0.3)
        for _ in range(30):
            tracker.observe("alice", 1.0)
        for _ in range(30):
            tracker.observe("alice", 0.0)
        assert tracker.satisfaction("alice") < 0.1

    def test_allocation_satisfaction_tracks_only_imposed(self):
        tracker = SatisfactionTracker(alpha=0.5)
        tracker.observe("prov", 1.0, imposed=False)
        tracker.observe("prov", 0.0, imposed=True)
        assert tracker.allocation_satisfaction("prov") == pytest.approx(0.0)
        assert tracker.satisfaction("prov") == pytest.approx(0.5)

    def test_allocation_satisfaction_falls_back_to_satisfaction(self):
        tracker = SatisfactionTracker()
        tracker.observe("alice", 0.9)
        assert tracker.allocation_satisfaction("alice") == tracker.satisfaction("alice")

    def test_windowed_satisfaction_bounded_window(self):
        tracker = SatisfactionTracker(window=3)
        for value in (0.0, 0.0, 1.0, 1.0, 1.0):
            tracker.observe("alice", value)
        assert tracker.windowed_satisfaction("alice") == 1.0

    def test_dissatisfied_listing(self):
        tracker = SatisfactionTracker()
        tracker.observe("happy", 0.9)
        tracker.observe("sad", 0.1)
        assert tracker.dissatisfied(threshold=0.4) == ["sad"]

    def test_observation_validation(self):
        tracker = SatisfactionTracker()
        with pytest.raises(ConfigurationError):
            tracker.observe("alice", 1.5)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            SatisfactionTracker(alpha=2.0)
        with pytest.raises(ConfigurationError):
            SatisfactionTracker(window=0)

    def test_all_satisfactions_and_counts(self):
        tracker = SatisfactionTracker()
        tracker.observe("alice", 0.9)
        tracker.observe("bob", 0.4)
        assert set(tracker.all_satisfactions()) == {"alice", "bob"}
        assert tracker.observation_count("alice") == 1
        assert tracker.observation_count("nobody") == 0

    def test_reset(self):
        tracker = SatisfactionTracker()
        tracker.observe("alice", 0.9)
        tracker.reset()
        assert tracker.participants() == []


class TestAggregation:
    SATISFACTIONS: ClassVar[dict[str, float]] = {"a": 0.9, "b": 0.7, "c": 0.2}

    def test_summary(self):
        summary = summarize(self.SATISFACTIONS, threshold=0.4)
        assert summary.mean == pytest.approx(0.6)
        assert summary.minimum == 0.2
        assert summary.maximum == 0.9
        assert summary.spread == pytest.approx(0.7)
        assert summary.below_threshold_fraction == pytest.approx(1 / 3)
        assert summary.count == 3

    def test_summary_empty(self):
        summary = summarize({})
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_global_satisfaction_blends_mean_and_minimum(self):
        value = global_satisfaction(self.SATISFACTIONS, fairness_weight=0.5)
        assert value == pytest.approx(0.5 * 0.6 + 0.5 * 0.2)
        assert global_satisfaction({}) == 0.0

    def test_global_satisfaction_weighted(self):
        weighted = global_satisfaction(
            self.SATISFACTIONS, weights={"a": 10.0, "b": 0.0, "c": 0.0}, fairness_weight=0.0
        )
        assert weighted == pytest.approx(0.9)

    def test_global_satisfaction_zero_weights_fall_back_to_mean(self):
        value = global_satisfaction(
            self.SATISFACTIONS, weights={"a": 0.0, "b": 0.0, "c": 0.0}, fairness_weight=0.0
        )
        assert value == pytest.approx(0.6)

    def test_fairness_penalizes_starved_users(self):
        balanced = {"a": 0.6, "b": 0.6}
        unbalanced = {"a": 1.0, "b": 0.2}
        assert global_satisfaction(balanced) > global_satisfaction(unbalanced)

    def test_local_satisfaction_uses_neighbourhood(self):
        value = local_satisfaction("a", self.SATISFACTIONS, ["b", "c"])
        assert value == pytest.approx(0.6)
        assert local_satisfaction("a", self.SATISFACTIONS, []) == 0.9

    def test_local_satisfaction_unknown_user(self):
        assert local_satisfaction("zz", {}, ["a"]) == 0.5

    def test_per_community_satisfaction(self):
        partition = {"a": 0, "b": 0, "c": 1}
        per_community = per_community_satisfaction(self.SATISFACTIONS, partition)
        assert per_community[0] == pytest.approx(0.8)
        assert per_community[1] == pytest.approx(0.2)

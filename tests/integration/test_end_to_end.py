"""End-to-end integration tests crossing every subsystem boundary."""

import pytest

from repro import quick_scenario
from repro.core.config import SystemSettings
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.privacy.oecd import check_compliance


class TestQuickScenario:
    def test_public_quickstart_entry_point(self):
        result = quick_scenario(n_users=25, rounds=10, seed=1)
        assert 0.0 <= result.trust.global_trust <= 1.0
        assert len(result.simulation.transactions) > 0


class TestCrossSubsystemConsistency:
    def test_facets_reflect_sharing_level_end_to_end(self):
        """The Figure-2 antagonism holds on full simulations, not just analytically."""
        closed = Scenario(
            ScenarioConfig(
                n_users=30,
                rounds=20,
                seed=2,
                malicious_fraction=0.25,
                settings=SystemSettings(sharing_level=0.15, reputation_mechanism="eigentrust"),
            )
        ).run()
        open_ = Scenario(
            ScenarioConfig(
                n_users=30,
                rounds=20,
                seed=2,
                malicious_fraction=0.25,
                settings=SystemSettings(sharing_level=1.0, reputation_mechanism="eigentrust"),
            )
        ).run()
        assert closed.facets.privacy > open_.facets.privacy
        assert closed.facets.reputation <= open_.facets.reputation
        assert closed.simulation.disclosure_rate < open_.simulation.disclosure_rate

    def test_reputation_improves_outcomes_under_attack(self):
        no_reputation = Scenario(
            ScenarioConfig(
                n_users=30,
                rounds=20,
                seed=5,
                malicious_fraction=0.4,
                settings=SystemSettings(reputation_mechanism="none"),
            )
        ).run()
        with_reputation = Scenario(
            ScenarioConfig(
                n_users=30,
                rounds=20,
                seed=5,
                malicious_fraction=0.4,
                settings=SystemSettings(reputation_mechanism="eigentrust"),
            )
        ).run()
        assert with_reputation.malicious_interaction_rate < no_reputation.malicious_interaction_rate
        assert with_reputation.trust.global_trust > no_reputation.trust.global_trust

    def test_priserv_compliance_check_runs_on_scenario_output(self, default_scenario_result):
        report = check_compliance(default_scenario_result.priserv)
        assert 0.0 <= report.overall <= 1.0

    def test_per_user_trust_tracks_personal_experience(self, default_scenario_result):
        result = default_scenario_result
        # Dishonest users provide bad service but still receive service, so the
        # population's trust should not be uniform.
        trusts = list(result.trust.per_user_trust.values())
        assert max(trusts) - min(trusts) > 0.01

    def test_adversarial_population_lowers_global_trust(self):
        healthy = Scenario(
            ScenarioConfig(n_users=30, rounds=12, seed=6, malicious_fraction=0.05)
        ).run()
        hostile = Scenario(
            ScenarioConfig(n_users=30, rounds=12, seed=6, malicious_fraction=0.6)
        ).run()
        assert hostile.trust.global_trust < healthy.trust.global_trust

    def test_churn_and_adversaries_do_not_break_the_pipeline(self):
        result = Scenario(
            ScenarioConfig(
                n_users=25,
                rounds=15,
                seed=7,
                malicious_fraction=0.3,
                traitor_fraction=0.3,
                whitewasher_fraction=0.3,
                selfish_fraction=0.2,
                collusion_fraction=0.3,
                churn_leave_probability=0.1,
            )
        ).run()
        assert 0.0 <= result.trust.global_trust <= 1.0
        assert result.simulation.metrics.total_transactions > 0


@pytest.mark.parametrize("mechanism", ["average", "beta", "trustme", "eigentrust", "powertrust"])
def test_every_mechanism_runs_end_to_end(mechanism):
    result = Scenario(
        ScenarioConfig(
            n_users=20,
            rounds=8,
            seed=8,
            settings=SystemSettings(reputation_mechanism=mechanism),
        )
    ).run()
    assert result.reputation_scores
    assert 0.0 <= result.facets.reputation <= 1.0

"""The shipped examples must run to completion (they are documentation)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_four_examples_ship():
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_and_prints(example, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(example)])
    runpy.run_path(str(example), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output.splitlines()) > 3

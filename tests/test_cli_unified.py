"""The unified ``repro`` CLI and the byte-equivalence of the legacy shim.

``python -m repro.experiments`` must remain a perfect alias of the new
``python -m repro`` surface: same records, byte for byte, plus exactly one
deprecation warning.  These tests are the contract the CI shim-equivalence
check enforces.
"""

import json
import warnings

import pytest

from repro import cli
from repro.experiments import __main__ as legacy

SWEEP_ARGS = [
    "sweep",
    "figure2-left",
    "--grid",
    "threshold=0.4,0.6",
    "--seed",
    "5",
]


class TestDispatch:
    def test_no_args_prints_overview(self, capsys):
        assert cli.main([]) == 0
        output = capsys.readouterr().out
        for command in cli.COMMANDS:
            assert command in output

    @pytest.mark.parametrize("spelling", ["help", "--help", "-h"])
    def test_help_spellings_print_overview(self, spelling, capsys):
        assert cli.main([spelling]) == 0
        assert "usage: repro <command>" in capsys.readouterr().out

    def test_run_list(self, capsys):
        assert cli.main(["run", "--list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "claims" in output

    def test_bare_experiment_name_is_run_input(self, capsys):
        assert cli.main(["figure2-right"]) == 0
        assert "==== figure2-right ====" in capsys.readouterr().out

    def test_unknown_experiment_via_run_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["run", "no-such-experiment"])
        assert excinfo.value.code != 0
        assert "unknown experiments" in capsys.readouterr().err

    def test_verify_records_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "records.json"
        assert cli.main([*SWEEP_ARGS, "--out", str(out)]) == 0
        capsys.readouterr()
        assert cli.main(["verify-records", str(out)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_scenario_subcommand_routes(self, capsys):
        assert cli.main(["scenario", "list"]) == 0
        assert capsys.readouterr().out.strip()

    def test_serve_help_routes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "--port" in output
        assert "--restore" in output


class TestLegacyShimEquivalence:
    def test_sweep_records_byte_identical(self, tmp_path, capsys):
        new_out = tmp_path / "new.json"
        old_out = tmp_path / "old.json"
        assert cli.main([*SWEEP_ARGS, "--out", str(new_out)]) == 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert legacy.main([*SWEEP_ARGS, "--out", str(old_out)]) == 0
        assert new_out.read_bytes() == old_out.read_bytes()
        payload = json.loads(new_out.read_text())
        assert len(payload["records"]) == 2

    def test_shim_warns_once(self, capsys):
        legacy._warned = False
        try:
            with pytest.warns(DeprecationWarning, match="python -m repro"):
                assert legacy.main(["run", "--list"]) == 0
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                assert legacy.main(["run", "--list"]) == 0  # second call: silent
        finally:
            legacy._warned = False

    def test_shim_reexports_parsers(self):
        assert legacy.build_sweep_parser is cli.build_sweep_parser
        assert legacy.build_parser().prog == "python -m repro.experiments"

    def test_shim_bare_invocation_still_runs_everything(self, monkeypatch, capsys):
        # The historical contract: no args = run every experiment.  Patch the
        # runner so the test stays fast; the point is the dispatch path.
        ran = []
        monkeypatch.setattr(
            "repro.cli.run_experiment",
            lambda name, quick: ran.append(name) or f"<{name}>",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert legacy.main([]) == 0
        from repro.experiments.runner import EXPERIMENTS

        assert ran == sorted(EXPERIMENTS)

    def test_new_cli_bare_invocation_does_not_run_everything(self, monkeypatch, capsys):
        ran = []
        monkeypatch.setattr(
            "repro.cli.run_experiment",
            lambda name, quick: ran.append(name) or f"<{name}>",
        )
        assert cli.main([]) == 0
        assert ran == []

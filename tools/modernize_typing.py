#!/usr/bin/env python
"""One-shot codemod: modernize typing syntax tree-wide (ruff UP006/UP007/UP035/UP037).

Rewrites, in annotation positions only:

* ``Dict``/``List``/``Tuple``/``Set``/``FrozenSet``/``Type`` → builtin
  generics (PEP 585), ``Deque`` → ``deque``;
* ``Optional[X]`` → ``X | None`` and ``Union[A, B]`` → ``A | B`` (PEP 604),
  skipped when an operand is a quoted forward reference in a module without
  ``from __future__ import annotations`` (the ``|`` would evaluate at
  definition time and fail on strings);
* quoted annotations → unquoted, only under ``from __future__ import
  annotations`` (postponed evaluation makes the quotes redundant).

Then rewrites the module's ``from typing import ...`` statement: names that
moved to :mod:`collections.abc` (``Callable``, ``Iterable``, ``Iterator``,
``Mapping``, ``Sequence``, ...) are re-imported from there, and names no
longer referenced anywhere in the module are dropped.

Runtime type-alias assignments (``Foo = Callable[[X], None]``) are left
untouched on purpose — they are expressions, not annotations — which is why
the import cleanup is usage-driven rather than unconditional.

Usage: ``python tools/modernize_typing.py [--check] PATH ...``
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

import libcst as cst

#: PEP 585: typing name -> builtin (or stdlib) replacement.
PEP585 = {
    "Dict": "dict",
    "List": "list",
    "Tuple": "tuple",
    "Set": "set",
    "FrozenSet": "frozenset",
    "Type": "type",
    "Deque": "deque",
}

#: Names that moved from typing to collections.abc (PEP 585 / ruff UP035).
ABC_NAMES = frozenset(
    {
        "Callable",
        "Collection",
        "Container",
        "Generator",
        "Hashable",
        "Iterable",
        "Iterator",
        "Mapping",
        "MutableMapping",
        "MutableSequence",
        "MutableSet",
        "Reversible",
        "Sequence",
        "Sized",
    }
)


def _contains_string(node: cst.BaseExpression) -> bool:
    found = False

    class _Finder(cst.CSTVisitor):
        def visit_SimpleString(self, node: cst.SimpleString) -> None:
            nonlocal found
            found = True

    node.visit(_Finder())
    return found


class Modernizer(cst.CSTTransformer):
    """Rewrites typing constructs inside annotation subtrees."""

    def __init__(self, typing_names: frozenset[str], has_future: bool) -> None:
        self.typing_names = typing_names
        self.has_future = has_future
        self._annotation_depth = 0
        self.changed = False

    # -- annotation context tracking ----------------------------------------

    def visit_Annotation(self, node: cst.Annotation) -> bool:
        self._annotation_depth += 1
        return True

    def leave_Annotation(
        self, original: cst.Annotation, updated: cst.Annotation
    ) -> cst.Annotation:
        self._annotation_depth -= 1
        return updated

    @property
    def _in_annotation(self) -> bool:
        return self._annotation_depth > 0

    # -- rewrites ------------------------------------------------------------

    def leave_Name(self, original: cst.Name, updated: cst.Name) -> cst.Name:
        if not self._in_annotation:
            return updated
        target = PEP585.get(updated.value)
        if target is not None and updated.value in self.typing_names:
            self.changed = True
            return updated.with_changes(value=target)
        return updated

    def leave_Subscript(
        self, original: cst.Subscript, updated: cst.Subscript
    ) -> cst.BaseExpression:
        if not self._in_annotation or not isinstance(updated.value, cst.Name):
            return updated
        head = updated.value.value
        if head not in ("Optional", "Union") or head not in self.typing_names:
            return updated
        elements = []
        for element in updated.slice:
            index = element.slice
            if not isinstance(index, cst.Index):
                return updated
            elements.append(index.value)
        if head == "Optional":
            if len(elements) != 1:
                return updated
            elements.append(cst.Name("None"))
        if not self.has_future and any(_contains_string(e) for e in elements):
            # Without postponed evaluation ``"X" | None`` is a runtime error.
            return updated
        self.changed = True
        union: cst.BaseExpression = elements[0]
        for right in elements[1:]:
            union = cst.BinaryOperation(
                left=union,
                operator=cst.BitOr(
                    whitespace_before=cst.SimpleWhitespace(" "),
                    whitespace_after=cst.SimpleWhitespace(" "),
                ),
                right=right,
            )
        if len(elements) > 1 and isinstance(union, cst.BinaryOperation):
            return union
        return union

    def leave_SimpleString(
        self, original: cst.SimpleString, updated: cst.SimpleString
    ) -> cst.BaseExpression:
        # UP037: quoted annotations are redundant under future-annotations.
        if not self._in_annotation or not self.has_future:
            return updated
        value = updated.evaluated_value
        if not isinstance(value, str):
            return updated
        try:
            parsed = cst.parse_expression(value)
        except cst.ParserSyntaxError:
            return updated
        if isinstance(
            parsed, (cst.Name, cst.Attribute, cst.Subscript, cst.BinaryOperation)
        ):
            self.changed = True
            return parsed
        return updated


def _rewrite_typing_import(source: str) -> str:
    """Drop now-unused typing names; move abc names to collections.abc."""
    tree = ast.parse(source)
    import_node = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "typing" and node.level == 0:
            import_node = node
            break
    if import_node is None or any(alias.asname for alias in import_node.names):
        return source
    imported = [alias.name for alias in import_node.names]

    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Quoted forward references may still name typing symbols.
            try:
                for sub in ast.walk(ast.parse(node.value, mode="eval")):
                    if isinstance(sub, ast.Name):
                        used.add(sub.id)
            except SyntaxError:
                pass

    keep_typing = [n for n in imported if n in used and n not in ABC_NAMES]
    move_abc = [n for n in imported if n in used and n in ABC_NAMES]
    if keep_typing == imported and not move_abc:
        return source

    statements = []
    if move_abc:
        statements.append("from collections.abc import " + ", ".join(sorted(move_abc)))
    if keep_typing:
        statements.append("from typing import " + ", ".join(sorted(keep_typing)))

    lines = source.splitlines(keepends=True)
    start, end = import_node.lineno - 1, import_node.end_lineno
    replacement = "".join(stmt + "\n" for stmt in statements)
    return "".join(lines[:start]) + replacement + "".join(lines[end:])


def modernize_source(source: str) -> str:
    tree = ast.parse(source)
    typing_names = frozenset(
        alias.asname or alias.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ImportFrom) and node.module == "typing" and node.level == 0
        for alias in node.names
    )
    has_future = any(
        isinstance(node, ast.ImportFrom) and node.module == "__future__"
        for node in tree.body
    )
    if typing_names:
        module = cst.parse_module(source)
        transformer = Modernizer(typing_names, has_future)
        module = module.visit(transformer)
        if transformer.changed:
            source = module.code
    return _rewrite_typing_import(source)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument(
        "--check", action="store_true", help="report files that would change, change nothing"
    )
    args = parser.parse_args(argv)

    files: list[Path] = []
    for path in args.paths:
        files.extend(sorted(path.rglob("*.py")) if path.is_dir() else [path])

    changed = 0
    for file_path in files:
        original = file_path.read_text()
        updated = modernize_source(original)
        if updated != original:
            changed += 1
            if args.check:
                print(f"would rewrite {file_path}")
            else:
                file_path.write_text(updated)
                print(f"rewrote {file_path}")
    print(f"{changed} of {len(files)} files {'need rewriting' if args.check else 'rewritten'}")
    return 1 if (args.check and changed) else 0


if __name__ == "__main__":
    sys.exit(main())
